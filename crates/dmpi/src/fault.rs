//! Deterministic fault injection and failure-aware primitives.
//!
//! At the paper's headline scale (3,000 KNL nodes / 192,000 cores) rank
//! failure and stragglers are routine operating conditions, not
//! exceptions. This module supplies the pieces a world needs to keep
//! producing correct results when ranks die mid-build:
//!
//! * [`FaultPlan`] — a seeded, deterministic schedule of injected faults
//!   (kill a rank at a DLB task, delay a straggler, drop or corrupt a
//!   point-to-point payload), parsed from a compact `"seed:spec,..."`
//!   grammar so a failing run is exactly reproducible from its CLI flag;
//! * [`CommError`] — typed communication errors that replace aborts, so
//!   a builder can observe "I am dead" or "a peer timed out" and unwind
//!   cleanly instead of poisoning the process;
//! * [`FtBarrier`] — a failure-aware barrier: waits time out instead of
//!   hanging forever, and a dying rank *deregisters* so survivors
//!   regroup immediately around the smaller world;
//! * [`TaskLeases`] — a lease table over the DLB task range: every claim
//!   is recorded, and when a rank dies its lost tasks are reclaimed and
//!   re-issued to survivors exactly once.
//!
//! # FaultPlan grammar
//!
//! ```text
//! <plan>  := <seed> ":" <spec> ("," <spec>)*
//! <spec>  := "kill@" <task>                 kill whichever rank claims task <task>
//!          | "kill@" <rank> "#" <claim>     kill rank <rank> at its <claim>-th claim
//!          | "kill*" <count>                kill at <count> seed-chosen task indices
//!          | "delay@" <rank> "#" <claim> ":" <ms>   straggler: sleep <ms> on that claim
//!          | "drop@" <from> "->" <to> "#" <nth>     drop the <nth> message from->to
//!          | "corrupt@" <from> "->" <to> "#" <nth>  corrupt the <nth> message from->to
//! ```
//!
//! Example: `"42:kill@3,delay@1#5:20"` — seed 42, kill whoever claims
//! task 3, and make rank 1 sleep 20 ms on its fifth claim.
//!
//! # Lease semantics
//!
//! Kills fire *after* a claim succeeds, so a killed rank always dies
//! holding a fresh lease — guaranteeing at least one task is reclaimed
//! per kill. Two durability modes cover the two builder families:
//!
//! * [`LeaseMode::Volatile`] — replicated-Fock builders: a dead rank's
//!   partial Fock never reaches the reduction, so *every* task it ever
//!   owned (completed or not) is reissued to survivors;
//! * [`LeaseMode::Durable`] — distributed-data builders: completion
//!   means "flushed to the distributed array", so only tasks still held
//!   (claimed but not flushed) at death are reissued.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// A typed communication failure. Replaces the panics/aborts that a
/// brittle world would raise, so callers can unwind and regroup.
///
/// The variants split into two severities (see
/// [`is_transient`](CommError::is_transient)): *transient* failures — a
/// dropped or corrupt message, a recoverable timeout — are expected to
/// drain into the retry/retransmit machinery of a [`RetryPolicy`],
/// while *fatal* failures — a dead caller, a failed peer, an exhausted
/// retry budget — escalate into the mark-dead / lease-reclaim path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The calling rank has been marked dead (by fault injection); it
    /// must release its resources and return without touching
    /// collectives.
    SelfDead,
    /// A specific peer is known to have failed.
    RankFailed {
        /// The rank that died.
        rank: usize,
    },
    /// A wait (barrier, lease, receive) exceeded its deadline.
    Timeout {
        /// What was being waited on, for diagnostics.
        what: &'static str,
    },
    /// A received payload failed its checksum.
    CorruptPayload {
        /// Sender of the damaged message.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// A reliable send burned its whole retry budget without ever being
    /// acknowledged. Fatal: the peer is presumed dead or unreachable.
    RetriesExhausted {
        /// The unreachable destination rank.
        to: usize,
        /// Tag of the undeliverable message.
        tag: u64,
        /// How many transmission attempts were made.
        attempts: usize,
    },
}

impl CommError {
    /// True for failures a bounded retry is expected to absorb (lost or
    /// corrupt message, recoverable timeout); false for fatal ones
    /// (dead caller, failed peer, exhausted retry budget) that must
    /// escalate into the mark-dead / lease-reclaim path.
    pub fn is_transient(&self) -> bool {
        matches!(self, CommError::Timeout { .. } | CommError::CorruptPayload { .. })
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::SelfDead => write!(f, "calling rank is dead"),
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout { what } => write!(f, "timed out waiting on {what}"),
            CommError::CorruptPayload { from, tag } => {
                write!(f, "corrupt payload from rank {from} (tag {tag})")
            }
            CommError::RetriesExhausted { to, tag, attempts } => {
                write!(f, "no ack from rank {to} after {attempts} attempts (tag {tag})")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Retry/backoff policy for the reliable message path and the
/// failure-aware waits of a world.
///
/// A reliable send transmits its payload with a per-edge sequence
/// number and waits [`ack_timeout`](RetryPolicy::ack_timeout) for the
/// receiver's ack; on a transient failure (ack lost, payload dropped or
/// corrupt in flight) it backs off deterministically and retransmits,
/// up to [`max_attempts`](RetryPolicy::max_attempts) total
/// transmissions. The backoff schedule is a pure function of
/// `(seed, edge, attempt)` — no wall-clock or entropy reads — so a
/// faulted run replays identically and virtual-time harnesses can
/// precompute every sleep.
///
/// The policy also owns the world's failure-aware wait deadlines
/// ([`ft_timeout`](RetryPolicy::ft_timeout) for barriers and lease
/// polls, [`recv_timeout`](RetryPolicy::recv_timeout) for blocking
/// receives), replacing the hard-coded 30 s / 60 s constants that
/// fault tests previously depended on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per reliable message (>= 1). `1`
    /// disables the ack/retransmit protocol entirely — see
    /// [`RetryPolicy::none`].
    pub max_attempts: usize,
    /// How long a sender waits for an ack before retransmitting.
    pub ack_timeout: Duration,
    /// Backoff before the first retransmission.
    pub backoff_base: Duration,
    /// Multiplier applied to the backoff per further retransmission.
    pub backoff_factor: u32,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Deadline for failure-aware barriers and the lease poll loop:
    /// long enough that it only fires on a genuine hang, short enough
    /// that a wedged run still terminates with a diagnosis.
    pub ft_timeout: Duration,
    /// How long a blocking receive waits before concluding the message
    /// will never arrive.
    pub recv_timeout: Duration,
}

impl Default for RetryPolicy {
    /// Reliable delivery with a small retry budget and the legacy wait
    /// deadlines (30 s barrier/lease, 60 s receive).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            ack_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(2),
            backoff_factor: 2,
            backoff_cap: Duration::from_millis(50),
            seed: 0x9E37_79B9_7F4A_7C15,
            ft_timeout: Duration::from_secs(30),
            recv_timeout: Duration::from_secs(60),
        }
    }
}

impl RetryPolicy {
    /// No reliability layer at all: single transmission, no acks, no
    /// retransmits — the raw fire-and-forget semantics of the legacy
    /// message path. The A/B baseline for overhead benchmarks.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Whether the ack/retransmit protocol is active.
    pub fn reliable(&self) -> bool {
        self.max_attempts > 1
    }

    /// Set both failure-aware wait deadlines (barrier/lease and
    /// receive) to `timeout` — the `--comm-timeout-ms` CLI knob.
    pub fn with_comm_timeout(mut self, timeout: Duration) -> Self {
        self.ft_timeout = timeout;
        self.recv_timeout = timeout;
        self
    }

    /// Backoff before retransmission number `retry` (1-based) on the
    /// `from -> to` edge: exponential in `retry`, capped, with a
    /// deterministic jitter of up to half the step derived from
    /// `(seed, edge, retry)`. Pure function — identical across replays.
    pub fn backoff_for(&self, from: usize, to: usize, retry: usize) -> Duration {
        let base = self.backoff_base.as_nanos() as u64;
        let factor = u64::from(self.backoff_factor.max(1));
        let mut step = base;
        for _ in 1..retry {
            step = step.saturating_mul(factor);
        }
        let mut state = self
            .seed
            .wrapping_add((from as u64) << 32)
            .wrapping_add(to as u64)
            .wrapping_add((retry as u64) << 48);
        let jitter = if step == 0 { 0 } else { splitmix64(&mut state) % (step / 2 + 1) };
        Duration::from_nanos(step.saturating_add(jitter)).min(self.backoff_cap)
    }
}

/// One injected fault from a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Kill whichever rank claims global task `task` (fires once).
    KillAtTask {
        /// Global DLB task index that is fatal to claim.
        task: usize,
    },
    /// Kill rank `rank` when it makes its `claim`-th successful claim
    /// (1-based).
    KillAtClaim {
        /// Rank to kill.
        rank: usize,
        /// 1-based successful-claim ordinal at which it dies.
        claim: usize,
    },
    /// Kill at `count` seed-chosen distinct task indices (resolved once
    /// the task range is known).
    KillRandom {
        /// How many distinct fatal task indices to choose.
        count: usize,
    },
    /// Make rank `rank` sleep `millis` ms on its `claim`-th claim.
    Delay {
        /// Straggling rank.
        rank: usize,
        /// 1-based claim ordinal on which to sleep.
        claim: usize,
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Silently drop the `nth` (1-based) message from `from` to `to`.
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based message ordinal on the (from, to) edge.
        nth: usize,
    },
    /// Corrupt the payload of the `nth` (1-based) message from `from`
    /// to `to`; the receiver detects it by checksum.
    CorruptMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based message ordinal on the (from, to) edge.
        nth: usize,
    },
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for any randomized choices (e.g. [`FaultSpec::KillRandom`]).
    pub seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed; add faults with the builder
    /// methods or use [`FaultPlan::parse`].
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// Plan that kills whichever ranks claim the given global tasks.
    pub fn kill_at_tasks(seed: u64, tasks: &[usize]) -> Self {
        let specs = tasks.iter().map(|&task| FaultSpec::KillAtTask { task }).collect();
        FaultPlan { seed, specs }
    }

    /// Plan that kills at `count` seed-chosen task indices.
    pub fn random_kills(seed: u64, count: usize) -> Self {
        FaultPlan { seed, specs: vec![FaultSpec::KillRandom { count }] }
    }

    /// Append one fault to the plan.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The scheduled faults, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Parse the `"seed:spec,spec,..."` grammar (see module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (seed_str, rest) =
            text.split_once(':').ok_or_else(|| format!("fault plan '{text}' needs 'seed:spec'"))?;
        let seed: u64 = seed_str.parse().map_err(|_| format!("bad fault seed '{seed_str}'"))?;
        let mut plan = FaultPlan::new(seed);
        for spec in rest.split(',').filter(|s| !s.is_empty()) {
            plan.specs.push(parse_spec(spec)?);
        }
        Ok(plan)
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad {what} '{s}'"))
}

fn parse_edge(body: &str, kind: &str) -> Result<(usize, usize, usize), String> {
    let (edge, nth) =
        body.split_once('#').ok_or_else(|| format!("{kind} needs '<from>-><to>#<nth>'"))?;
    let (from, to) =
        edge.split_once("->").ok_or_else(|| format!("{kind} needs '<from>-><to>#<nth>'"))?;
    Ok((parse_usize(from, "rank")?, parse_usize(to, "rank")?, parse_usize(nth, "message index")?))
}

fn parse_spec(spec: &str) -> Result<FaultSpec, String> {
    if let Some(body) = spec.strip_prefix("kill@") {
        return if let Some((rank, claim)) = body.split_once('#') {
            Ok(FaultSpec::KillAtClaim {
                rank: parse_usize(rank, "rank")?,
                claim: parse_usize(claim, "claim index")?,
            })
        } else {
            Ok(FaultSpec::KillAtTask { task: parse_usize(body, "task index")? })
        };
    }
    if let Some(body) = spec.strip_prefix("kill*") {
        return Ok(FaultSpec::KillRandom { count: parse_usize(body, "kill count")? });
    }
    if let Some(body) = spec.strip_prefix("delay@") {
        let (rank_claim, ms) =
            body.split_once(':').ok_or("delay needs '<rank>#<claim>:<millis>'")?;
        let (rank, claim) =
            rank_claim.split_once('#').ok_or("delay needs '<rank>#<claim>:<millis>'")?;
        return Ok(FaultSpec::Delay {
            rank: parse_usize(rank, "rank")?,
            claim: parse_usize(claim, "claim index")?,
            millis: ms.parse().map_err(|_| format!("bad delay millis '{ms}'"))?,
        });
    }
    if let Some(body) = spec.strip_prefix("drop@") {
        let (from, to, nth) = parse_edge(body, "drop")?;
        return Ok(FaultSpec::DropMessage { from, to, nth });
    }
    if let Some(body) = spec.strip_prefix("corrupt@") {
        let (from, to, nth) = parse_edge(body, "corrupt")?;
        return Ok(FaultSpec::CorruptMessage { from, to, nth });
    }
    Err(format!("unknown fault spec '{spec}'"))
}

/// SplitMix64 step: the deterministic PRNG behind seeded fault choices
/// and payload checksums. Small, dependency-free, and good enough for
/// reproducible test schedules.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct BarrierState {
    expected: usize,
    arrived: usize,
    generation: u64,
}

/// A failure-aware barrier: generation-counting, with timeouts instead
/// of unbounded hangs, and a [`deregister`](FtBarrier::deregister)
/// operation so a dying rank permanently leaves the group and current
/// waiters regroup around the survivors.
pub struct FtBarrier {
    state: StdMutex<BarrierState>,
    cv: Condvar,
}

impl FtBarrier {
    /// Barrier over `n` participants.
    pub fn new(n: usize) -> Self {
        FtBarrier {
            state: StdMutex::new(BarrierState { expected: n, arrived: 0, generation: 0 }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wait for the current generation to complete, or time out. On
    /// timeout the caller's arrival is withdrawn so the barrier count
    /// stays consistent.
    pub fn wait(&self, timeout: Duration) -> Result<(), CommError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        s.arrived += 1;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                s.arrived = s.arrived.saturating_sub(1);
                return Err(CommError::Timeout { what: "barrier" });
            }
            let (guard, _timed_out) =
                self.cv.wait_timeout(s, remaining).unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
        Ok(())
    }

    /// Register an arrival without blocking. Returns `None` if this
    /// arrival completed the barrier (waiters are released), otherwise
    /// the generation token to poll with
    /// [`wait_released`](FtBarrier::wait_released) /
    /// [`withdraw`](FtBarrier::withdraw). This split lets a rank keep
    /// servicing its message channel (acking peers' retransmissions)
    /// while parked at a barrier — without progress there, a peer whose
    /// ack was lost would retransmit into silence forever.
    pub fn arrive(&self) -> Option<u64> {
        let mut s = self.lock();
        s.arrived += 1;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            None
        } else {
            Some(s.generation)
        }
    }

    /// Block up to `timeout` for generation `gen` to complete; true if
    /// it has (the caller's pending arrival is consumed by the
    /// release), false on timeout (the arrival still stands).
    pub fn wait_released(&self, gen: u64, timeout: Duration) -> bool {
        let mut s = self.lock();
        if s.generation != gen {
            return true;
        }
        let (guard, _timed_out) =
            self.cv.wait_timeout(s, timeout).unwrap_or_else(|e| e.into_inner());
        s = guard;
        s.generation != gen
    }

    /// Withdraw a pending arrival registered by
    /// [`arrive`](FtBarrier::arrive) (a caller giving up). Returns
    /// false if generation `gen` already completed — the arrival was
    /// consumed and there is nothing to withdraw.
    pub fn withdraw(&self, gen: u64) -> bool {
        let mut s = self.lock();
        if s.generation != gen {
            return false;
        }
        s.arrived = s.arrived.saturating_sub(1);
        true
    }

    /// Permanently remove one participant (a dying rank). If the
    /// remaining waiters now satisfy the barrier, they are released.
    pub fn deregister(&self) {
        let mut s = self.lock();
        s.expected = s.expected.saturating_sub(1);
        if s.expected > 0 && s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
        }
    }

    /// Current number of registered participants.
    pub fn expected(&self) -> usize {
        self.lock().expected
    }
}

/// Durability model for a lease table — what "complete" means when the
/// completing rank later dies. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseMode {
    /// Completed work lives only in the dead rank's private buffers:
    /// reissue everything it ever owned.
    Volatile,
    /// Completed work is already flushed somewhere durable: reissue
    /// only tasks held (incomplete) at death.
    Durable,
}

/// Outcome of a lease claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseClaim {
    /// A task was leased to the caller.
    Task {
        /// The claimed task index.
        task: usize,
        /// True if this claim came from the reissue queue (recovery
        /// work), false for a fresh first-issue claim.
        reissued: bool,
        /// For reissued work, the dead rank whose loss queued this
        /// task — recovery traces attribute reclaimed spans to the
        /// original claimant. `None` for fresh claims.
        prev_owner: Option<usize>,
    },
    /// Nothing to hand out right now, but outstanding tasks are still
    /// leased to live ranks — poll again.
    Pending,
    /// Every task is complete.
    Exhausted,
}

struct LeaseState {
    n_tasks: usize,
    mode: LeaseMode,
    next_fresh: usize,
    owner: Vec<Option<usize>>,
    done: Vec<bool>,
    queued: Vec<bool>,
    ever_owned: Vec<Vec<usize>>,
    /// Reissue queue entries: `(task, rank that lost it)`.
    reissue: VecDeque<(usize, usize)>,
    reclaimed: usize,
    reissued_claims: usize,
}

/// Lease table over a DLB task range `0..n_tasks`. Every claim records
/// an owner; [`on_death`](TaskLeases::on_death) reclaims a dead rank's
/// lost tasks and queues each for reissue exactly once.
pub struct TaskLeases {
    inner: Mutex<LeaseState>,
}

impl TaskLeases {
    /// Empty table for a world of `n_ranks` ranks; call
    /// [`reset`](TaskLeases::reset) before claiming.
    pub fn new(n_ranks: usize) -> Self {
        TaskLeases {
            inner: Mutex::new(LeaseState {
                n_tasks: 0,
                mode: LeaseMode::Volatile,
                next_fresh: 0,
                owner: Vec::new(),
                done: Vec::new(),
                queued: Vec::new(),
                ever_owned: vec![Vec::new(); n_ranks],
                reissue: VecDeque::new(),
                reclaimed: 0,
                reissued_claims: 0,
            }),
        }
    }

    /// Start a new task range. Recovery counters (`reclaimed`,
    /// `reissued_claims`) accumulate across resets so a whole world run
    /// can be summarized.
    pub fn reset(&self, n_tasks: usize, mode: LeaseMode) {
        let mut s = self.inner.lock();
        s.n_tasks = n_tasks;
        s.mode = mode;
        s.next_fresh = 0;
        s.owner = vec![None; n_tasks];
        s.done = vec![false; n_tasks];
        s.queued = vec![false; n_tasks];
        for owned in &mut s.ever_owned {
            owned.clear();
        }
        s.reissue.clear();
    }

    /// Claim the next task for `rank`: reissued recovery work first,
    /// then fresh tasks, else [`LeaseClaim::Pending`] /
    /// [`LeaseClaim::Exhausted`].
    pub fn claim(&self, rank: usize) -> LeaseClaim {
        let mut s = self.inner.lock();
        if let Some((task, dead)) = s.reissue.pop_front() {
            s.queued[task] = false;
            s.owner[task] = Some(rank);
            s.ever_owned[rank].push(task);
            s.reissued_claims += 1;
            return LeaseClaim::Task { task, reissued: true, prev_owner: Some(dead) };
        }
        if s.next_fresh < s.n_tasks {
            let task = s.next_fresh;
            s.next_fresh += 1;
            s.owner[task] = Some(rank);
            s.ever_owned[rank].push(task);
            return LeaseClaim::Task { task, reissued: false, prev_owner: None };
        }
        if s.done.iter().all(|&d| d) {
            LeaseClaim::Exhausted
        } else {
            LeaseClaim::Pending
        }
    }

    /// Mark `task` complete and release its lease.
    pub fn complete(&self, task: usize) {
        let mut s = self.inner.lock();
        s.owner[task] = None;
        s.done[task] = true;
    }

    /// Reclaim the dead rank's lost tasks per the table's
    /// [`LeaseMode`]; returns how many were queued for reissue.
    pub fn on_death(&self, rank: usize) -> usize {
        let mut s = self.inner.lock();
        let owned = std::mem::take(&mut s.ever_owned[rank]);
        let mut count = 0;
        for task in owned {
            if s.queued[task] {
                continue;
            }
            let lost = match s.mode {
                // Everything the dead rank ever touched is lost with
                // its private accumulators — unless another rank has
                // since re-owned the task.
                LeaseMode::Volatile => s.done[task] || s.owner[task] == Some(rank),
                // Completion is durable; only tasks still held at
                // death are lost.
                LeaseMode::Durable => s.owner[task] == Some(rank) && !s.done[task],
            };
            if lost {
                s.done[task] = false;
                s.owner[task] = None;
                s.queued[task] = true;
                s.reissue.push_back((task, rank));
                count += 1;
            }
        }
        s.reclaimed += count;
        count
    }

    /// True once every task in the current range is complete.
    pub fn all_complete(&self) -> bool {
        let s = self.inner.lock();
        s.done.iter().all(|&d| d)
    }

    /// Total tasks reclaimed from dead ranks (cumulative across resets).
    pub fn reclaimed(&self) -> usize {
        self.inner.lock().reclaimed
    }

    /// Total claims served from the reissue queue — recovery retries
    /// performed by survivors (cumulative across resets).
    pub fn reissued_claims(&self) -> usize {
        self.inner.lock().reissued_claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn plan_grammar_round_trips() {
        let p =
            FaultPlan::parse("42:kill@3,kill@1#2,kill*2,delay@1#5:20,drop@0->2#1,corrupt@2->0#3")
                .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(
            p.specs(),
            &[
                FaultSpec::KillAtTask { task: 3 },
                FaultSpec::KillAtClaim { rank: 1, claim: 2 },
                FaultSpec::KillRandom { count: 2 },
                FaultSpec::Delay { rank: 1, claim: 5, millis: 20 },
                FaultSpec::DropMessage { from: 0, to: 2, nth: 1 },
                FaultSpec::CorruptMessage { from: 2, to: 0, nth: 3 },
            ]
        );
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        assert!(FaultPlan::parse("no-seed").is_err());
        assert!(FaultPlan::parse("x:kill@3").is_err());
        assert!(FaultPlan::parse("1:exploded@3").is_err());
        assert!(FaultPlan::parse("1:delay@1#2").is_err());
        assert!(FaultPlan::parse("1:drop@0#1").is_err());
    }

    #[test]
    fn empty_spec_list_is_a_valid_plan() {
        let p = FaultPlan::parse("7:").unwrap();
        assert_eq!(p.seed, 7);
        assert!(p.specs().is_empty());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..8 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }

    #[test]
    fn barrier_releases_all_waiters() {
        let b = Arc::new(FtBarrier::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let b = Arc::clone(&b);
                scope.spawn(move || b.wait(Duration::from_secs(5)).unwrap());
            }
        });
    }

    #[test]
    fn barrier_wait_times_out_instead_of_hanging() {
        let b = FtBarrier::new(2);
        let err = b.wait(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, CommError::Timeout { what: "barrier" });
        // The withdrawn arrival must not satisfy a later full barrier
        // prematurely: a fresh single wait still times out.
        let err = b.wait(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, CommError::Timeout { what: "barrier" });
    }

    #[test]
    fn deregister_releases_current_waiters() {
        let b = Arc::new(FtBarrier::new(3));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let b = Arc::clone(&b);
                scope.spawn(move || b.wait(Duration::from_secs(5)).unwrap());
            }
            // Give the two waiters time to arrive, then drop the third
            // participant: the remaining two must be released.
            std::thread::sleep(Duration::from_millis(30));
            b.deregister();
        });
        assert_eq!(b.expected(), 2);
    }

    #[test]
    fn leases_issue_each_task_once_without_faults() {
        let t = TaskLeases::new(2);
        t.reset(3, LeaseMode::Volatile);
        let mut got = Vec::new();
        loop {
            match t.claim(0) {
                LeaseClaim::Task { task, reissued, .. } => {
                    assert!(!reissued);
                    got.push(task);
                    t.complete(task);
                }
                LeaseClaim::Exhausted => break,
                LeaseClaim::Pending => panic!("single claimer never sees Pending"),
            }
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert!(t.all_complete());
        assert_eq!(t.reclaimed(), 0);
    }

    #[test]
    fn volatile_death_reissues_completed_and_held_tasks() {
        let t = TaskLeases::new(2);
        t.reset(4, LeaseMode::Volatile);
        // Rank 0 completes task 0, holds task 1. Rank 1 holds task 2.
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        t.complete(0);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 1, reissued: false, prev_owner: None });
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 2, reissued: false, prev_owner: None });
        // Rank 0 dies: both its tasks (0 completed, 1 held) are lost.
        assert_eq!(t.on_death(0), 2);
        assert_eq!(t.reclaimed(), 2);
        // Survivor drains reissued work first (each claim naming the
        // dead original claimant), then the fresh task.
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 0, reissued: true, prev_owner: Some(0) });
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 1, reissued: true, prev_owner: Some(0) });
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 3, reissued: false, prev_owner: None });
        for task in [0, 1, 2, 3] {
            t.complete(task);
        }
        assert!(t.all_complete());
        assert_eq!(t.reissued_claims(), 2);
    }

    #[test]
    fn durable_death_reissues_only_incomplete_tasks() {
        let t = TaskLeases::new(2);
        t.reset(3, LeaseMode::Durable);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        t.complete(0); // flushed — survives the death below
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 1, reissued: false, prev_owner: None });
        assert_eq!(t.on_death(0), 1);
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 1, reissued: true, prev_owner: Some(0) });
        t.complete(1);
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 2, reissued: false, prev_owner: None });
        t.complete(2);
        assert!(t.all_complete());
        assert_eq!(t.reclaimed(), 1);
    }

    #[test]
    fn pending_while_a_live_rank_holds_the_last_task() {
        let t = TaskLeases::new(2);
        t.reset(1, LeaseMode::Volatile);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        // Rank 1 must poll, not terminate: the task may yet fail back
        // into the reissue queue.
        assert_eq!(t.claim(1), LeaseClaim::Pending);
        t.complete(0);
        assert_eq!(t.claim(1), LeaseClaim::Exhausted);
    }

    #[test]
    fn double_death_does_not_reissue_twice() {
        let t = TaskLeases::new(3);
        t.reset(2, LeaseMode::Volatile);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        assert_eq!(t.on_death(0), 1);
        // Task 0 sits queued; a second death report for the same rank
        // (or a later one for a rank that never re-owned it) is a no-op.
        assert_eq!(t.on_death(0), 0);
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 0, reissued: true, prev_owner: Some(0) });
        // Rank 1 dies too: task 0 is reissued again (its work died with
        // rank 1, which the new claim now names), exactly once.
        assert_eq!(t.on_death(1), 1);
        assert_eq!(t.claim(2), LeaseClaim::Task { task: 0, reissued: true, prev_owner: Some(1) });
        t.complete(0);
        assert_eq!(t.claim(2), LeaseClaim::Task { task: 1, reissued: false, prev_owner: None });
        t.complete(1);
        assert!(t.all_complete());
        assert_eq!(t.reclaimed(), 2);
        assert_eq!(t.reissued_claims(), 2);
    }

    #[test]
    fn taxonomy_splits_transient_from_fatal() {
        assert!(CommError::Timeout { what: "ack" }.is_transient());
        assert!(CommError::CorruptPayload { from: 0, tag: 1 }.is_transient());
        assert!(!CommError::SelfDead.is_transient());
        assert!(!CommError::RankFailed { rank: 2 }.is_transient());
        assert!(!CommError::RetriesExhausted { to: 1, tag: 9, attempts: 4 }.is_transient());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let p = RetryPolicy::default();
        for retry in 1..=6 {
            assert_eq!(p.backoff_for(0, 1, retry), p.backoff_for(0, 1, retry), "replayable");
            assert!(p.backoff_for(0, 1, retry) <= p.backoff_cap);
        }
        // Pre-cap the schedule is non-decreasing in the retry number.
        assert!(p.backoff_for(2, 3, 1) >= p.backoff_base);
        assert!(p.backoff_for(2, 3, 2) >= p.backoff_for(2, 3, 1).min(p.backoff_cap / 2));
        // Different edges jitter differently (with overwhelming probability).
        assert_ne!(p.backoff_for(0, 1, 1), p.backoff_for(1, 0, 1));
    }

    #[test]
    fn none_policy_disables_reliability() {
        assert!(!RetryPolicy::none().reliable());
        assert!(RetryPolicy::default().reliable());
        let p = RetryPolicy::default().with_comm_timeout(Duration::from_millis(750));
        assert_eq!(p.ft_timeout, Duration::from_millis(750));
        assert_eq!(p.recv_timeout, Duration::from_millis(750));
    }

    #[test]
    fn zero_task_range_is_immediately_exhausted() {
        let t = TaskLeases::new(1);
        t.reset(0, LeaseMode::Volatile);
        assert_eq!(t.claim(0), LeaseClaim::Exhausted);
        assert!(t.all_complete());
    }
}
