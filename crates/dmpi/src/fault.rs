//! Deterministic fault injection and failure-aware primitives.
//!
//! At the paper's headline scale (3,000 KNL nodes / 192,000 cores) rank
//! failure and stragglers are routine operating conditions, not
//! exceptions. This module supplies the pieces a world needs to keep
//! producing correct results when ranks die mid-build:
//!
//! * [`FaultPlan`] — a seeded, deterministic schedule of injected faults
//!   (kill a rank at a DLB task, delay a straggler, drop or corrupt a
//!   point-to-point payload), parsed from a compact `"seed:spec,..."`
//!   grammar so a failing run is exactly reproducible from its CLI flag;
//! * [`CommError`] — typed communication errors that replace aborts, so
//!   a builder can observe "I am dead" or "a peer timed out" and unwind
//!   cleanly instead of poisoning the process;
//! * [`FtBarrier`] — a failure-aware barrier: waits time out instead of
//!   hanging forever, and a dying rank *deregisters* so survivors
//!   regroup immediately around the smaller world;
//! * [`TaskLeases`] — a lease table over the DLB task range: every claim
//!   is recorded, and when a rank dies its lost tasks are reclaimed and
//!   re-issued to survivors exactly once.
//!
//! # FaultPlan grammar
//!
//! ```text
//! <plan>  := <seed> ":" <spec> ("," <spec>)*
//! <spec>  := "kill@" <task>                 kill whichever rank claims task <task>
//!          | "kill@" <rank> "#" <claim>     kill rank <rank> at its <claim>-th claim
//!          | "kill*" <count>                kill at <count> seed-chosen task indices
//!          | "delay@" <rank> "#" <claim> ":" <ms>   straggler: sleep <ms> on that claim
//!          | "drop@" <from> "->" <to> "#" <nth>     drop the <nth> message from->to
//!          | "corrupt@" <from> "->" <to> "#" <nth>  corrupt the <nth> message from->to
//! ```
//!
//! Example: `"42:kill@3,delay@1#5:20"` — seed 42, kill whoever claims
//! task 3, and make rank 1 sleep 20 ms on its fifth claim.
//!
//! # Lease semantics
//!
//! Kills fire *after* a claim succeeds, so a killed rank always dies
//! holding a fresh lease — guaranteeing at least one task is reclaimed
//! per kill. Two durability modes cover the two builder families:
//!
//! * [`LeaseMode::Volatile`] — replicated-Fock builders: a dead rank's
//!   partial Fock never reaches the reduction, so *every* task it ever
//!   owned (completed or not) is reissued to survivors;
//! * [`LeaseMode::Durable`] — distributed-data builders: completion
//!   means "flushed to the distributed array", so only tasks still held
//!   (claimed but not flushed) at death are reissued.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// A typed communication failure. Replaces the panics/aborts that a
/// brittle world would raise, so callers can unwind and regroup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The calling rank has been marked dead (by fault injection); it
    /// must release its resources and return without touching
    /// collectives.
    SelfDead,
    /// A specific peer is known to have failed.
    RankFailed {
        /// The rank that died.
        rank: usize,
    },
    /// A wait (barrier, lease, receive) exceeded its deadline.
    Timeout {
        /// What was being waited on, for diagnostics.
        what: &'static str,
    },
    /// A received payload failed its checksum.
    CorruptPayload {
        /// Sender of the damaged message.
        from: usize,
        /// Message tag.
        tag: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::SelfDead => write!(f, "calling rank is dead"),
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout { what } => write!(f, "timed out waiting on {what}"),
            CommError::CorruptPayload { from, tag } => {
                write!(f, "corrupt payload from rank {from} (tag {tag})")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// One injected fault from a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Kill whichever rank claims global task `task` (fires once).
    KillAtTask {
        /// Global DLB task index that is fatal to claim.
        task: usize,
    },
    /// Kill rank `rank` when it makes its `claim`-th successful claim
    /// (1-based).
    KillAtClaim {
        /// Rank to kill.
        rank: usize,
        /// 1-based successful-claim ordinal at which it dies.
        claim: usize,
    },
    /// Kill at `count` seed-chosen distinct task indices (resolved once
    /// the task range is known).
    KillRandom {
        /// How many distinct fatal task indices to choose.
        count: usize,
    },
    /// Make rank `rank` sleep `millis` ms on its `claim`-th claim.
    Delay {
        /// Straggling rank.
        rank: usize,
        /// 1-based claim ordinal on which to sleep.
        claim: usize,
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Silently drop the `nth` (1-based) message from `from` to `to`.
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based message ordinal on the (from, to) edge.
        nth: usize,
    },
    /// Corrupt the payload of the `nth` (1-based) message from `from`
    /// to `to`; the receiver detects it by checksum.
    CorruptMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based message ordinal on the (from, to) edge.
        nth: usize,
    },
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for any randomized choices (e.g. [`FaultSpec::KillRandom`]).
    pub seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed; add faults with the builder
    /// methods or use [`FaultPlan::parse`].
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// Plan that kills whichever ranks claim the given global tasks.
    pub fn kill_at_tasks(seed: u64, tasks: &[usize]) -> Self {
        let specs = tasks.iter().map(|&task| FaultSpec::KillAtTask { task }).collect();
        FaultPlan { seed, specs }
    }

    /// Plan that kills at `count` seed-chosen task indices.
    pub fn random_kills(seed: u64, count: usize) -> Self {
        FaultPlan { seed, specs: vec![FaultSpec::KillRandom { count }] }
    }

    /// Append one fault to the plan.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The scheduled faults, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Parse the `"seed:spec,spec,..."` grammar (see module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (seed_str, rest) =
            text.split_once(':').ok_or_else(|| format!("fault plan '{text}' needs 'seed:spec'"))?;
        let seed: u64 = seed_str.parse().map_err(|_| format!("bad fault seed '{seed_str}'"))?;
        let mut plan = FaultPlan::new(seed);
        for spec in rest.split(',').filter(|s| !s.is_empty()) {
            plan.specs.push(parse_spec(spec)?);
        }
        Ok(plan)
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad {what} '{s}'"))
}

fn parse_edge(body: &str, kind: &str) -> Result<(usize, usize, usize), String> {
    let (edge, nth) =
        body.split_once('#').ok_or_else(|| format!("{kind} needs '<from>-><to>#<nth>'"))?;
    let (from, to) =
        edge.split_once("->").ok_or_else(|| format!("{kind} needs '<from>-><to>#<nth>'"))?;
    Ok((parse_usize(from, "rank")?, parse_usize(to, "rank")?, parse_usize(nth, "message index")?))
}

fn parse_spec(spec: &str) -> Result<FaultSpec, String> {
    if let Some(body) = spec.strip_prefix("kill@") {
        return if let Some((rank, claim)) = body.split_once('#') {
            Ok(FaultSpec::KillAtClaim {
                rank: parse_usize(rank, "rank")?,
                claim: parse_usize(claim, "claim index")?,
            })
        } else {
            Ok(FaultSpec::KillAtTask { task: parse_usize(body, "task index")? })
        };
    }
    if let Some(body) = spec.strip_prefix("kill*") {
        return Ok(FaultSpec::KillRandom { count: parse_usize(body, "kill count")? });
    }
    if let Some(body) = spec.strip_prefix("delay@") {
        let (rank_claim, ms) =
            body.split_once(':').ok_or("delay needs '<rank>#<claim>:<millis>'")?;
        let (rank, claim) =
            rank_claim.split_once('#').ok_or("delay needs '<rank>#<claim>:<millis>'")?;
        return Ok(FaultSpec::Delay {
            rank: parse_usize(rank, "rank")?,
            claim: parse_usize(claim, "claim index")?,
            millis: ms.parse().map_err(|_| format!("bad delay millis '{ms}'"))?,
        });
    }
    if let Some(body) = spec.strip_prefix("drop@") {
        let (from, to, nth) = parse_edge(body, "drop")?;
        return Ok(FaultSpec::DropMessage { from, to, nth });
    }
    if let Some(body) = spec.strip_prefix("corrupt@") {
        let (from, to, nth) = parse_edge(body, "corrupt")?;
        return Ok(FaultSpec::CorruptMessage { from, to, nth });
    }
    Err(format!("unknown fault spec '{spec}'"))
}

/// SplitMix64 step: the deterministic PRNG behind seeded fault choices
/// and payload checksums. Small, dependency-free, and good enough for
/// reproducible test schedules.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct BarrierState {
    expected: usize,
    arrived: usize,
    generation: u64,
}

/// A failure-aware barrier: generation-counting, with timeouts instead
/// of unbounded hangs, and a [`deregister`](FtBarrier::deregister)
/// operation so a dying rank permanently leaves the group and current
/// waiters regroup around the survivors.
pub struct FtBarrier {
    state: StdMutex<BarrierState>,
    cv: Condvar,
}

impl FtBarrier {
    /// Barrier over `n` participants.
    pub fn new(n: usize) -> Self {
        FtBarrier {
            state: StdMutex::new(BarrierState { expected: n, arrived: 0, generation: 0 }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wait for the current generation to complete, or time out. On
    /// timeout the caller's arrival is withdrawn so the barrier count
    /// stays consistent.
    pub fn wait(&self, timeout: Duration) -> Result<(), CommError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        s.arrived += 1;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                s.arrived = s.arrived.saturating_sub(1);
                return Err(CommError::Timeout { what: "barrier" });
            }
            let (guard, _timed_out) =
                self.cv.wait_timeout(s, remaining).unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
        Ok(())
    }

    /// Permanently remove one participant (a dying rank). If the
    /// remaining waiters now satisfy the barrier, they are released.
    pub fn deregister(&self) {
        let mut s = self.lock();
        s.expected = s.expected.saturating_sub(1);
        if s.expected > 0 && s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
        }
    }

    /// Current number of registered participants.
    pub fn expected(&self) -> usize {
        self.lock().expected
    }
}

/// Durability model for a lease table — what "complete" means when the
/// completing rank later dies. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseMode {
    /// Completed work lives only in the dead rank's private buffers:
    /// reissue everything it ever owned.
    Volatile,
    /// Completed work is already flushed somewhere durable: reissue
    /// only tasks held (incomplete) at death.
    Durable,
}

/// Outcome of a lease claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseClaim {
    /// A task was leased to the caller.
    Task {
        /// The claimed task index.
        task: usize,
        /// True if this claim came from the reissue queue (recovery
        /// work), false for a fresh first-issue claim.
        reissued: bool,
        /// For reissued work, the dead rank whose loss queued this
        /// task — recovery traces attribute reclaimed spans to the
        /// original claimant. `None` for fresh claims.
        prev_owner: Option<usize>,
    },
    /// Nothing to hand out right now, but outstanding tasks are still
    /// leased to live ranks — poll again.
    Pending,
    /// Every task is complete.
    Exhausted,
}

struct LeaseState {
    n_tasks: usize,
    mode: LeaseMode,
    next_fresh: usize,
    owner: Vec<Option<usize>>,
    done: Vec<bool>,
    queued: Vec<bool>,
    ever_owned: Vec<Vec<usize>>,
    /// Reissue queue entries: `(task, rank that lost it)`.
    reissue: VecDeque<(usize, usize)>,
    reclaimed: usize,
    reissued_claims: usize,
}

/// Lease table over a DLB task range `0..n_tasks`. Every claim records
/// an owner; [`on_death`](TaskLeases::on_death) reclaims a dead rank's
/// lost tasks and queues each for reissue exactly once.
pub struct TaskLeases {
    inner: Mutex<LeaseState>,
}

impl TaskLeases {
    /// Empty table for a world of `n_ranks` ranks; call
    /// [`reset`](TaskLeases::reset) before claiming.
    pub fn new(n_ranks: usize) -> Self {
        TaskLeases {
            inner: Mutex::new(LeaseState {
                n_tasks: 0,
                mode: LeaseMode::Volatile,
                next_fresh: 0,
                owner: Vec::new(),
                done: Vec::new(),
                queued: Vec::new(),
                ever_owned: vec![Vec::new(); n_ranks],
                reissue: VecDeque::new(),
                reclaimed: 0,
                reissued_claims: 0,
            }),
        }
    }

    /// Start a new task range. Recovery counters (`reclaimed`,
    /// `reissued_claims`) accumulate across resets so a whole world run
    /// can be summarized.
    pub fn reset(&self, n_tasks: usize, mode: LeaseMode) {
        let mut s = self.inner.lock();
        s.n_tasks = n_tasks;
        s.mode = mode;
        s.next_fresh = 0;
        s.owner = vec![None; n_tasks];
        s.done = vec![false; n_tasks];
        s.queued = vec![false; n_tasks];
        for owned in &mut s.ever_owned {
            owned.clear();
        }
        s.reissue.clear();
    }

    /// Claim the next task for `rank`: reissued recovery work first,
    /// then fresh tasks, else [`LeaseClaim::Pending`] /
    /// [`LeaseClaim::Exhausted`].
    pub fn claim(&self, rank: usize) -> LeaseClaim {
        let mut s = self.inner.lock();
        if let Some((task, dead)) = s.reissue.pop_front() {
            s.queued[task] = false;
            s.owner[task] = Some(rank);
            s.ever_owned[rank].push(task);
            s.reissued_claims += 1;
            return LeaseClaim::Task { task, reissued: true, prev_owner: Some(dead) };
        }
        if s.next_fresh < s.n_tasks {
            let task = s.next_fresh;
            s.next_fresh += 1;
            s.owner[task] = Some(rank);
            s.ever_owned[rank].push(task);
            return LeaseClaim::Task { task, reissued: false, prev_owner: None };
        }
        if s.done.iter().all(|&d| d) {
            LeaseClaim::Exhausted
        } else {
            LeaseClaim::Pending
        }
    }

    /// Mark `task` complete and release its lease.
    pub fn complete(&self, task: usize) {
        let mut s = self.inner.lock();
        s.owner[task] = None;
        s.done[task] = true;
    }

    /// Reclaim the dead rank's lost tasks per the table's
    /// [`LeaseMode`]; returns how many were queued for reissue.
    pub fn on_death(&self, rank: usize) -> usize {
        let mut s = self.inner.lock();
        let owned = std::mem::take(&mut s.ever_owned[rank]);
        let mut count = 0;
        for task in owned {
            if s.queued[task] {
                continue;
            }
            let lost = match s.mode {
                // Everything the dead rank ever touched is lost with
                // its private accumulators — unless another rank has
                // since re-owned the task.
                LeaseMode::Volatile => s.done[task] || s.owner[task] == Some(rank),
                // Completion is durable; only tasks still held at
                // death are lost.
                LeaseMode::Durable => s.owner[task] == Some(rank) && !s.done[task],
            };
            if lost {
                s.done[task] = false;
                s.owner[task] = None;
                s.queued[task] = true;
                s.reissue.push_back((task, rank));
                count += 1;
            }
        }
        s.reclaimed += count;
        count
    }

    /// True once every task in the current range is complete.
    pub fn all_complete(&self) -> bool {
        let s = self.inner.lock();
        s.done.iter().all(|&d| d)
    }

    /// Total tasks reclaimed from dead ranks (cumulative across resets).
    pub fn reclaimed(&self) -> usize {
        self.inner.lock().reclaimed
    }

    /// Total claims served from the reissue queue — recovery retries
    /// performed by survivors (cumulative across resets).
    pub fn reissued_claims(&self) -> usize {
        self.inner.lock().reissued_claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn plan_grammar_round_trips() {
        let p =
            FaultPlan::parse("42:kill@3,kill@1#2,kill*2,delay@1#5:20,drop@0->2#1,corrupt@2->0#3")
                .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(
            p.specs(),
            &[
                FaultSpec::KillAtTask { task: 3 },
                FaultSpec::KillAtClaim { rank: 1, claim: 2 },
                FaultSpec::KillRandom { count: 2 },
                FaultSpec::Delay { rank: 1, claim: 5, millis: 20 },
                FaultSpec::DropMessage { from: 0, to: 2, nth: 1 },
                FaultSpec::CorruptMessage { from: 2, to: 0, nth: 3 },
            ]
        );
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        assert!(FaultPlan::parse("no-seed").is_err());
        assert!(FaultPlan::parse("x:kill@3").is_err());
        assert!(FaultPlan::parse("1:exploded@3").is_err());
        assert!(FaultPlan::parse("1:delay@1#2").is_err());
        assert!(FaultPlan::parse("1:drop@0#1").is_err());
    }

    #[test]
    fn empty_spec_list_is_a_valid_plan() {
        let p = FaultPlan::parse("7:").unwrap();
        assert_eq!(p.seed, 7);
        assert!(p.specs().is_empty());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..8 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }

    #[test]
    fn barrier_releases_all_waiters() {
        let b = Arc::new(FtBarrier::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let b = Arc::clone(&b);
                scope.spawn(move || b.wait(Duration::from_secs(5)).unwrap());
            }
        });
    }

    #[test]
    fn barrier_wait_times_out_instead_of_hanging() {
        let b = FtBarrier::new(2);
        let err = b.wait(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, CommError::Timeout { what: "barrier" });
        // The withdrawn arrival must not satisfy a later full barrier
        // prematurely: a fresh single wait still times out.
        let err = b.wait(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, CommError::Timeout { what: "barrier" });
    }

    #[test]
    fn deregister_releases_current_waiters() {
        let b = Arc::new(FtBarrier::new(3));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let b = Arc::clone(&b);
                scope.spawn(move || b.wait(Duration::from_secs(5)).unwrap());
            }
            // Give the two waiters time to arrive, then drop the third
            // participant: the remaining two must be released.
            std::thread::sleep(Duration::from_millis(30));
            b.deregister();
        });
        assert_eq!(b.expected(), 2);
    }

    #[test]
    fn leases_issue_each_task_once_without_faults() {
        let t = TaskLeases::new(2);
        t.reset(3, LeaseMode::Volatile);
        let mut got = Vec::new();
        loop {
            match t.claim(0) {
                LeaseClaim::Task { task, reissued, .. } => {
                    assert!(!reissued);
                    got.push(task);
                    t.complete(task);
                }
                LeaseClaim::Exhausted => break,
                LeaseClaim::Pending => panic!("single claimer never sees Pending"),
            }
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert!(t.all_complete());
        assert_eq!(t.reclaimed(), 0);
    }

    #[test]
    fn volatile_death_reissues_completed_and_held_tasks() {
        let t = TaskLeases::new(2);
        t.reset(4, LeaseMode::Volatile);
        // Rank 0 completes task 0, holds task 1. Rank 1 holds task 2.
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        t.complete(0);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 1, reissued: false, prev_owner: None });
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 2, reissued: false, prev_owner: None });
        // Rank 0 dies: both its tasks (0 completed, 1 held) are lost.
        assert_eq!(t.on_death(0), 2);
        assert_eq!(t.reclaimed(), 2);
        // Survivor drains reissued work first (each claim naming the
        // dead original claimant), then the fresh task.
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 0, reissued: true, prev_owner: Some(0) });
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 1, reissued: true, prev_owner: Some(0) });
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 3, reissued: false, prev_owner: None });
        for task in [0, 1, 2, 3] {
            t.complete(task);
        }
        assert!(t.all_complete());
        assert_eq!(t.reissued_claims(), 2);
    }

    #[test]
    fn durable_death_reissues_only_incomplete_tasks() {
        let t = TaskLeases::new(2);
        t.reset(3, LeaseMode::Durable);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        t.complete(0); // flushed — survives the death below
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 1, reissued: false, prev_owner: None });
        assert_eq!(t.on_death(0), 1);
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 1, reissued: true, prev_owner: Some(0) });
        t.complete(1);
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 2, reissued: false, prev_owner: None });
        t.complete(2);
        assert!(t.all_complete());
        assert_eq!(t.reclaimed(), 1);
    }

    #[test]
    fn pending_while_a_live_rank_holds_the_last_task() {
        let t = TaskLeases::new(2);
        t.reset(1, LeaseMode::Volatile);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        // Rank 1 must poll, not terminate: the task may yet fail back
        // into the reissue queue.
        assert_eq!(t.claim(1), LeaseClaim::Pending);
        t.complete(0);
        assert_eq!(t.claim(1), LeaseClaim::Exhausted);
    }

    #[test]
    fn double_death_does_not_reissue_twice() {
        let t = TaskLeases::new(3);
        t.reset(2, LeaseMode::Volatile);
        assert_eq!(t.claim(0), LeaseClaim::Task { task: 0, reissued: false, prev_owner: None });
        assert_eq!(t.on_death(0), 1);
        // Task 0 sits queued; a second death report for the same rank
        // (or a later one for a rank that never re-owned it) is a no-op.
        assert_eq!(t.on_death(0), 0);
        assert_eq!(t.claim(1), LeaseClaim::Task { task: 0, reissued: true, prev_owner: Some(0) });
        // Rank 1 dies too: task 0 is reissued again (its work died with
        // rank 1, which the new claim now names), exactly once.
        assert_eq!(t.on_death(1), 1);
        assert_eq!(t.claim(2), LeaseClaim::Task { task: 0, reissued: true, prev_owner: Some(1) });
        t.complete(0);
        assert_eq!(t.claim(2), LeaseClaim::Task { task: 1, reissued: false, prev_owner: None });
        t.complete(1);
        assert!(t.all_complete());
        assert_eq!(t.reclaimed(), 2);
        assert_eq!(t.reissued_claims(), 2);
    }

    #[test]
    fn zero_task_range_is_immediately_exhausted() {
        let t = TaskLeases::new(1);
        t.reset(0, LeaseMode::Volatile);
        assert_eq!(t.claim(0), LeaseClaim::Exhausted);
        assert!(t.all_complete());
    }
}
