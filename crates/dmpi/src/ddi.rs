//! DDI process-model emulation: data servers vs MPI-3 one-sided, and
//! distributed arrays.
//!
//! GAMESS's DDI layer predates MPI one-sided support: classically every
//! compute rank is paired with a *data server* process that services
//! remote get/put/accumulate requests, doubling the process count (paper
//! §6.2). The MPI-3 based DDI eliminates the servers. The paper runs all
//! benchmarks without data servers; the mode lives here so the memory
//! model can quantify what the servers would have cost.

use crate::sync::Mutex;
use std::sync::Arc;

/// Which DDI transport the run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DdiMode {
    /// Classic DDI: one data-server process per compute rank.
    DataServer,
    /// MPI-3 one-sided DDI (used for all the paper's benchmarks).
    Mpi3OneSided,
}

impl DdiMode {
    /// OS processes consumed per compute rank.
    pub fn processes_per_rank(self) -> usize {
        match self {
            DdiMode::DataServer => 2,
            DdiMode::Mpi3OneSided => 1,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DdiMode::DataServer => "DDI data servers",
            DdiMode::Mpi3OneSided => "MPI-3 one-sided",
        }
    }
}

/// A globally addressable 1-D `f64` array striped over ranks in equal
/// blocks (DDI's `ddi_create` / `ddi_get` / `ddi_put` / `ddi_acc`).
///
/// In-process, segments are mutex-guarded vectors; each operation also
/// counts the bytes that would have crossed the network so communication
/// volume is observable. The [`DdiMode`] is behavioral, not just a label:
/// under [`DdiMode::Mpi3OneSided`] an access to the caller's own segment
/// is a direct load/store (no traffic), while under
/// [`DdiMode::DataServer`] *every* access — local segment included — is a
/// request/response pair serviced by the rank's paired data-server
/// process, so all bytes count as remote and every segment touch counts
/// one server message. The numerics are identical in both modes.
pub struct DistributedArray {
    segments: Vec<Arc<Mutex<Vec<f64>>>>,
    seg_len: usize,
    len: usize,
    mode: DdiMode,
    remote_bytes: Arc<Mutex<u64>>,
    server_messages: Arc<Mutex<u64>>,
}

impl DistributedArray {
    /// Create an array of `len` elements striped over `n_ranks` segments,
    /// in the MPI-3 one-sided transport (the paper's benchmark mode).
    pub fn new(len: usize, n_ranks: usize) -> DistributedArray {
        DistributedArray::new_with_mode(len, n_ranks, DdiMode::Mpi3OneSided)
    }

    /// Create an array striped over `n_ranks` segments with an explicit
    /// DDI transport mode.
    pub fn new_with_mode(len: usize, n_ranks: usize, mode: DdiMode) -> DistributedArray {
        let seg_len = len.div_ceil(n_ranks);
        let segments = (0..n_ranks)
            .map(|r| {
                let lo = (r * seg_len).min(len);
                let hi = ((r + 1) * seg_len).min(len);
                Arc::new(Mutex::new(vec![0.0; hi - lo]))
            })
            .collect();
        DistributedArray {
            segments,
            seg_len,
            len,
            mode,
            remote_bytes: Arc::new(Mutex::new(0)),
            server_messages: Arc::new(Mutex::new(0)),
        }
    }

    /// The DDI transport this array models.
    pub fn mode(&self) -> DdiMode {
        self.mode
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Which rank owns element `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        idx / self.seg_len
    }

    fn for_range(
        &self,
        caller: usize,
        lo: usize,
        data_len: usize,
        mut f: impl FnMut(usize, usize, &mut [f64]),
    ) {
        assert!(lo + data_len <= self.len, "range out of bounds");
        let mut pos = lo;
        let mut off = 0;
        while off < data_len {
            let seg = self.owner(pos);
            let seg_lo = pos - seg * self.seg_len;
            let take = (data_len - off).min(self.seg_len - seg_lo);
            let mut guard = self.segments[seg].lock();
            f(off, seg_lo, &mut guard[seg_lo..seg_lo + take]);
            match self.mode {
                // One-sided: only cross-rank access costs traffic.
                DdiMode::Mpi3OneSided => {
                    if seg != caller {
                        *self.remote_bytes.lock() += (take * 8) as u64;
                    }
                }
                // Data servers: every access is a message to the segment
                // owner's server process, local segments included.
                DdiMode::DataServer => {
                    *self.remote_bytes.lock() += (take * 8) as u64;
                    *self.server_messages.lock() += 1;
                }
            }
            pos += take;
            off += take;
        }
    }

    /// One-sided read of `[lo, lo + out.len())` by `caller`.
    pub fn get(&self, caller: usize, lo: usize, out: &mut [f64]) {
        let n = out.len();
        let out_cell = std::cell::RefCell::new(out);
        self.for_range(caller, lo, n, |off, _seg_lo, seg| {
            out_cell.borrow_mut()[off..off + seg.len()].copy_from_slice(seg);
        });
    }

    /// One-sided write.
    pub fn put(&self, caller: usize, lo: usize, data: &[f64]) {
        self.for_range(caller, lo, data.len(), |off, _seg_lo, seg| {
            seg.copy_from_slice(&data[off..off + seg.len()]);
        });
    }

    /// One-sided accumulate (`ddi_acc`): remote `+=`.
    pub fn acc(&self, caller: usize, lo: usize, data: &[f64]) {
        self.for_range(caller, lo, data.len(), |off, _seg_lo, seg| {
            for (s, d) in seg.iter_mut().zip(&data[off..]) {
                *s += d;
            }
        });
    }

    /// Bytes that crossed rank boundaries so far.
    pub fn remote_traffic_bytes(&self) -> u64 {
        *self.remote_bytes.lock()
    }

    /// Request/response messages serviced by data-server processes.
    /// Always zero in [`DdiMode::Mpi3OneSided`].
    pub fn server_messages(&self) -> u64 {
        *self.server_messages.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_process_counts() {
        assert_eq!(DdiMode::DataServer.processes_per_rank(), 2);
        assert_eq!(DdiMode::Mpi3OneSided.processes_per_rank(), 1);
    }

    #[test]
    fn put_get_roundtrip_across_segments() {
        let a = DistributedArray::new(100, 4);
        let data: Vec<f64> = (0..50).map(|x| x as f64).collect();
        // Write spanning segments 0 and 1 (seg_len = 25).
        a.put(0, 10, &data);
        let mut out = vec![0.0; 50];
        a.get(0, 10, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn acc_accumulates() {
        let a = DistributedArray::new(10, 2);
        a.acc(0, 3, &[1.0, 1.0]);
        a.acc(1, 3, &[2.0, 3.0]);
        let mut out = vec![0.0; 2];
        a.get(0, 3, &mut out);
        assert_eq!(out, vec![3.0, 4.0]);
    }

    #[test]
    fn remote_traffic_counts_only_cross_rank_bytes() {
        let a = DistributedArray::new(100, 4); // seg_len 25
        a.put(0, 0, &[1.0; 25]); // entirely local to rank 0
        assert_eq!(a.remote_traffic_bytes(), 0);
        a.put(0, 25, &[1.0; 25]); // entirely on rank 1
        assert_eq!(a.remote_traffic_bytes(), 200);
    }

    #[test]
    fn data_server_mode_charges_local_access_and_counts_messages() {
        let a = DistributedArray::new_with_mode(100, 4, DdiMode::DataServer); // seg_len 25
        a.put(0, 0, &[1.0; 25]); // local segment — still a server round-trip
        assert_eq!(a.remote_traffic_bytes(), 200);
        assert_eq!(a.server_messages(), 1);
        a.acc(0, 20, &[1.0; 10]); // spans segments 0 and 1: two messages
        assert_eq!(a.remote_traffic_bytes(), 280);
        assert_eq!(a.server_messages(), 3);
    }

    #[test]
    fn one_sided_mode_has_no_server_messages() {
        let a = DistributedArray::new(100, 4);
        assert_eq!(a.mode(), DdiMode::Mpi3OneSided);
        a.put(0, 0, &[1.0; 50]);
        a.get(1, 0, &mut [0.0; 50]);
        assert_eq!(a.server_messages(), 0);
    }

    #[test]
    fn modes_produce_identical_numerics() {
        for mode in [DdiMode::DataServer, DdiMode::Mpi3OneSided] {
            let a = DistributedArray::new_with_mode(10, 3, mode);
            a.put(0, 2, &[1.0, 2.0, 3.0]);
            a.acc(1, 3, &[0.5, 0.5]);
            let mut out = vec![0.0; 4];
            a.get(2, 2, &mut out);
            assert_eq!(out, vec![1.0, 2.5, 3.5, 0.0], "{}", mode.label());
        }
    }

    #[test]
    fn owner_mapping() {
        let a = DistributedArray::new(100, 4);
        assert_eq!(a.owner(0), 0);
        assert_eq!(a.owner(24), 0);
        assert_eq!(a.owner(25), 1);
        assert_eq!(a.owner(99), 3);
    }

    #[test]
    fn concurrent_acc_is_atomic_per_segment() {
        let a = Arc::new(DistributedArray::new(8, 2));
        let mut handles = Vec::new();
        for r in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.acc(r % 2, 0, &[1.0; 8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = vec![0.0; 8];
        a.get(0, 0, &mut out);
        assert!(out.iter().all(|&v| v == 4000.0), "{out:?}");
    }
}
