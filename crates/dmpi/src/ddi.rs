//! DDI process-model emulation: data servers vs MPI-3 one-sided, and
//! distributed arrays.
//!
//! GAMESS's DDI layer predates MPI one-sided support: classically every
//! compute rank is paired with a *data server* process that services
//! remote get/put/accumulate requests, doubling the process count (paper
//! §6.2). The MPI-3 based DDI eliminates the servers. The paper runs all
//! benchmarks without data servers; the mode lives here so the memory
//! model can quantify what the servers would have cost.

use crate::fault::{FaultPlan, FaultSpec, RetryPolicy};
use crate::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which DDI transport the run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DdiMode {
    /// Classic DDI: one data-server process per compute rank.
    DataServer,
    /// MPI-3 one-sided DDI (used for all the paper's benchmarks).
    Mpi3OneSided,
}

impl DdiMode {
    /// OS processes consumed per compute rank.
    pub fn processes_per_rank(self) -> usize {
        match self {
            DdiMode::DataServer => 2,
            DdiMode::Mpi3OneSided => 1,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DdiMode::DataServer => "DDI data servers",
            DdiMode::Mpi3OneSided => "MPI-3 one-sided",
        }
    }
}

/// Counters of the reliable request/response link underneath a
/// [`DistributedArray`] (see [`DistributedArray::with_faults`]).
/// All zero for windows without a fault-injected link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Remote request messages carried by the link.
    pub messages: u64,
    /// Requests acknowledged by the owning side (successful deliveries).
    pub acks: u64,
    /// Requests retransmitted after a transient fault.
    pub retransmits: u64,
    /// Payloads discarded after failing checksum verification.
    pub corruptions_detected: u64,
    /// Requests that were delivered after >= 1 transient fault.
    pub transient_recoveries: u64,
    /// Window-edge faults actually injected (drops + corruptions).
    pub faults_injected: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LinkFaultKind {
    Drop,
    Corrupt,
}

struct LinkFault {
    from: usize,
    to: usize,
    nth: usize,
    kind: LinkFaultKind,
    fired: bool,
}

/// Reliable-delivery layer for window traffic: every remote get/put/acc
/// is a logical request message on the `(caller -> owner)` edge. A
/// [`FaultPlan`]'s `drop@`/`corrupt@` specs are interpreted on these
/// window edges (in their own per-edge ordinal space, independent of
/// the world's rank-message ordinals): a dropped request never reaches
/// the owner, a corrupt one is detected by checksum and discarded —
/// either way the link backs off deterministically and retransmits
/// within the policy budget, so a transient window fault costs a
/// retransmission instead of a failed rank.
struct WindowLink {
    faults: Mutex<Vec<LinkFault>>,
    /// Physical 1-based transmission ordinals per (caller, owner) edge.
    seq: Mutex<HashMap<(usize, usize), usize>>,
    policy: RetryPolicy,
    messages: AtomicU64,
    acks: AtomicU64,
    retransmits: AtomicU64,
    corruptions: AtomicU64,
    recoveries: AtomicU64,
    injected: AtomicU64,
}

impl WindowLink {
    fn new(plan: &FaultPlan, policy: RetryPolicy) -> Self {
        let faults = plan
            .specs()
            .iter()
            .filter_map(|spec| match *spec {
                FaultSpec::DropMessage { from, to, nth } => {
                    Some(LinkFault { from, to, nth, kind: LinkFaultKind::Drop, fired: false })
                }
                FaultSpec::CorruptMessage { from, to, nth } => {
                    Some(LinkFault { from, to, nth, kind: LinkFaultKind::Corrupt, fired: false })
                }
                _ => None, // kills/delays belong to the world, not the link
            })
            .collect();
        WindowLink {
            faults: Mutex::new(faults),
            seq: Mutex::new(HashMap::new()),
            policy,
            messages: AtomicU64::new(0),
            acks: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    fn fire(&self, from: usize, to: usize) -> Option<LinkFaultKind> {
        let nth = {
            let mut seq = self.seq.lock();
            let n = seq.entry((from, to)).or_insert(0);
            *n += 1;
            *n
        };
        let mut faults = self.faults.lock();
        for f in faults.iter_mut() {
            if !f.fired && f.from == from && f.to == to && f.nth == nth {
                f.fired = true;
                return Some(f.kind);
            }
        }
        None
    }

    /// Carry one logical request on the `(from -> to)` edge, absorbing
    /// transient faults by bounded retransmission. Panics with a named
    /// edge when the retry budget is exhausted (fatal: at real scale
    /// this is where the owner would be declared dead).
    fn deliver(&self, from: usize, to: usize) {
        self.messages.fetch_add(1, Ordering::SeqCst);
        let attempts = self.policy.max_attempts.max(1);
        let mut suffered_transient = false;
        for attempt in 1..=attempts {
            if attempt > 1 {
                std::thread::sleep(self.policy.backoff_for(from, to, attempt - 1));
                self.retransmits.fetch_add(1, Ordering::SeqCst);
                phi_trace::instant("ddi.retransmit", to as u64);
            }
            match self.fire(from, to) {
                None => {
                    self.acks.fetch_add(1, Ordering::SeqCst);
                    if suffered_transient {
                        self.recoveries.fetch_add(1, Ordering::SeqCst);
                        phi_trace::instant("ddi.recovered", to as u64);
                    }
                    return;
                }
                Some(LinkFaultKind::Drop) => {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    suffered_transient = true;
                }
                Some(LinkFaultKind::Corrupt) => {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    self.corruptions.fetch_add(1, Ordering::SeqCst);
                    phi_trace::instant("ddi.corrupt_detected", to as u64);
                    suffered_transient = true;
                }
            }
        }
        panic!(
            "window link: no delivery on edge rank {from} -> rank {to} \
             after {attempts} attempts (retry budget exhausted)"
        );
    }

    fn stats(&self) -> LinkStats {
        LinkStats {
            messages: self.messages.load(Ordering::SeqCst),
            acks: self.acks.load(Ordering::SeqCst),
            retransmits: self.retransmits.load(Ordering::SeqCst),
            corruptions_detected: self.corruptions.load(Ordering::SeqCst),
            transient_recoveries: self.recoveries.load(Ordering::SeqCst),
            faults_injected: self.injected.load(Ordering::SeqCst),
        }
    }
}

/// A globally addressable 1-D `f64` array striped over ranks in equal
/// blocks (DDI's `ddi_create` / `ddi_get` / `ddi_put` / `ddi_acc`).
///
/// In-process, segments are mutex-guarded vectors; each operation also
/// counts the bytes that would have crossed the network so communication
/// volume is observable. The [`DdiMode`] is behavioral, not just a label:
/// under [`DdiMode::Mpi3OneSided`] an access to the caller's own segment
/// is a direct load/store (no traffic), while under
/// [`DdiMode::DataServer`] *every* access — local segment included — is a
/// request/response pair serviced by the rank's paired data-server
/// process, so all bytes count as remote and every segment touch counts
/// one server message. The numerics are identical in both modes.
pub struct DistributedArray {
    segments: Vec<Arc<Mutex<Vec<f64>>>>,
    seg_len: usize,
    len: usize,
    mode: DdiMode,
    remote_bytes: Arc<Mutex<u64>>,
    server_messages: Arc<Mutex<u64>>,
    link: Option<Arc<WindowLink>>,
}

impl DistributedArray {
    /// Create an array of `len` elements striped over `n_ranks` segments,
    /// in the MPI-3 one-sided transport (the paper's benchmark mode).
    pub fn new(len: usize, n_ranks: usize) -> DistributedArray {
        DistributedArray::new_with_mode(len, n_ranks, DdiMode::Mpi3OneSided)
    }

    /// Create an array striped over `n_ranks` segments with an explicit
    /// DDI transport mode.
    pub fn new_with_mode(len: usize, n_ranks: usize, mode: DdiMode) -> DistributedArray {
        let seg_len = len.div_ceil(n_ranks);
        let segments = (0..n_ranks)
            .map(|r| {
                let lo = (r * seg_len).min(len);
                let hi = ((r + 1) * seg_len).min(len);
                Arc::new(Mutex::new(vec![0.0; hi - lo]))
            })
            .collect();
        DistributedArray {
            segments,
            seg_len,
            len,
            mode,
            remote_bytes: Arc::new(Mutex::new(0)),
            server_messages: Arc::new(Mutex::new(0)),
            link: None,
        }
    }

    /// Attach a fault-injected reliable link: the plan's `drop@`/
    /// `corrupt@` specs fire on this window's `(caller -> owner)` edges
    /// (their own ordinal space, independent of the world's rank
    /// messages) and are absorbed by bounded, deterministically
    /// backed-off retransmission per `policy`.
    pub fn with_faults(mut self, plan: &FaultPlan, policy: RetryPolicy) -> Self {
        self.link = Some(Arc::new(WindowLink::new(plan, policy)));
        self
    }

    /// Counters of the reliable link (all zero without
    /// [`with_faults`](Self::with_faults)).
    pub fn link_stats(&self) -> LinkStats {
        self.link.as_ref().map_or(LinkStats::default(), |l| l.stats())
    }

    /// The DDI transport this array models.
    pub fn mode(&self) -> DdiMode {
        self.mode
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Which rank owns element `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        idx / self.seg_len
    }

    fn for_range(
        &self,
        caller: usize,
        lo: usize,
        data_len: usize,
        mut f: impl FnMut(usize, usize, &mut [f64]),
    ) {
        assert!(lo + data_len <= self.len, "range out of bounds");
        let mut pos = lo;
        let mut off = 0;
        while off < data_len {
            let seg = self.owner(pos);
            let seg_lo = pos - seg * self.seg_len;
            let take = (data_len - off).min(self.seg_len - seg_lo);
            // Remote accesses ride the (possibly fault-injected)
            // reliable link first: the segment mutation below only
            // happens once the logical request got through, exactly
            // like a real get/put/acc that was dropped in flight.
            let remote = match self.mode {
                DdiMode::Mpi3OneSided => seg != caller,
                DdiMode::DataServer => true,
            };
            if remote {
                if let Some(link) = &self.link {
                    link.deliver(caller, seg);
                }
            }
            let mut guard = self.segments[seg].lock();
            f(off, seg_lo, &mut guard[seg_lo..seg_lo + take]);
            match self.mode {
                // One-sided: only cross-rank access costs traffic.
                DdiMode::Mpi3OneSided => {
                    if seg != caller {
                        *self.remote_bytes.lock() += (take * 8) as u64;
                    }
                }
                // Data servers: every access is a message to the segment
                // owner's server process, local segments included.
                DdiMode::DataServer => {
                    *self.remote_bytes.lock() += (take * 8) as u64;
                    *self.server_messages.lock() += 1;
                }
            }
            pos += take;
            off += take;
        }
    }

    /// One-sided read of `[lo, lo + out.len())` by `caller`.
    pub fn get(&self, caller: usize, lo: usize, out: &mut [f64]) {
        let n = out.len();
        let out_cell = std::cell::RefCell::new(out);
        self.for_range(caller, lo, n, |off, _seg_lo, seg| {
            out_cell.borrow_mut()[off..off + seg.len()].copy_from_slice(seg);
        });
    }

    /// One-sided write.
    pub fn put(&self, caller: usize, lo: usize, data: &[f64]) {
        self.for_range(caller, lo, data.len(), |off, _seg_lo, seg| {
            seg.copy_from_slice(&data[off..off + seg.len()]);
        });
    }

    /// One-sided accumulate (`ddi_acc`): remote `+=`.
    pub fn acc(&self, caller: usize, lo: usize, data: &[f64]) {
        self.for_range(caller, lo, data.len(), |off, _seg_lo, seg| {
            for (s, d) in seg.iter_mut().zip(&data[off..]) {
                *s += d;
            }
        });
    }

    /// Bytes that crossed rank boundaries so far.
    pub fn remote_traffic_bytes(&self) -> u64 {
        *self.remote_bytes.lock()
    }

    /// Request/response messages serviced by data-server processes.
    /// Always zero in [`DdiMode::Mpi3OneSided`].
    pub fn server_messages(&self) -> u64 {
        *self.server_messages.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_process_counts() {
        assert_eq!(DdiMode::DataServer.processes_per_rank(), 2);
        assert_eq!(DdiMode::Mpi3OneSided.processes_per_rank(), 1);
    }

    #[test]
    fn put_get_roundtrip_across_segments() {
        let a = DistributedArray::new(100, 4);
        let data: Vec<f64> = (0..50).map(|x| x as f64).collect();
        // Write spanning segments 0 and 1 (seg_len = 25).
        a.put(0, 10, &data);
        let mut out = vec![0.0; 50];
        a.get(0, 10, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn acc_accumulates() {
        let a = DistributedArray::new(10, 2);
        a.acc(0, 3, &[1.0, 1.0]);
        a.acc(1, 3, &[2.0, 3.0]);
        let mut out = vec![0.0; 2];
        a.get(0, 3, &mut out);
        assert_eq!(out, vec![3.0, 4.0]);
    }

    #[test]
    fn remote_traffic_counts_only_cross_rank_bytes() {
        let a = DistributedArray::new(100, 4); // seg_len 25
        a.put(0, 0, &[1.0; 25]); // entirely local to rank 0
        assert_eq!(a.remote_traffic_bytes(), 0);
        a.put(0, 25, &[1.0; 25]); // entirely on rank 1
        assert_eq!(a.remote_traffic_bytes(), 200);
    }

    #[test]
    fn data_server_mode_charges_local_access_and_counts_messages() {
        let a = DistributedArray::new_with_mode(100, 4, DdiMode::DataServer); // seg_len 25
        a.put(0, 0, &[1.0; 25]); // local segment — still a server round-trip
        assert_eq!(a.remote_traffic_bytes(), 200);
        assert_eq!(a.server_messages(), 1);
        a.acc(0, 20, &[1.0; 10]); // spans segments 0 and 1: two messages
        assert_eq!(a.remote_traffic_bytes(), 280);
        assert_eq!(a.server_messages(), 3);
    }

    #[test]
    fn one_sided_mode_has_no_server_messages() {
        let a = DistributedArray::new(100, 4);
        assert_eq!(a.mode(), DdiMode::Mpi3OneSided);
        a.put(0, 0, &[1.0; 50]);
        a.get(1, 0, &mut [0.0; 50]);
        assert_eq!(a.server_messages(), 0);
    }

    #[test]
    fn modes_produce_identical_numerics() {
        for mode in [DdiMode::DataServer, DdiMode::Mpi3OneSided] {
            let a = DistributedArray::new_with_mode(10, 3, mode);
            a.put(0, 2, &[1.0, 2.0, 3.0]);
            a.acc(1, 3, &[0.5, 0.5]);
            let mut out = vec![0.0; 4];
            a.get(2, 2, &mut out);
            assert_eq!(out, vec![1.0, 2.5, 3.5, 0.0], "{}", mode.label());
        }
    }

    #[test]
    fn owner_mapping() {
        let a = DistributedArray::new(100, 4);
        assert_eq!(a.owner(0), 0);
        assert_eq!(a.owner(24), 0);
        assert_eq!(a.owner(25), 1);
        assert_eq!(a.owner(99), 3);
    }

    #[test]
    fn concurrent_acc_is_atomic_per_segment() {
        let a = Arc::new(DistributedArray::new(8, 2));
        let mut handles = Vec::new();
        for r in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.acc(r % 2, 0, &[1.0; 8]);
                }
            }));
        }
        for (worker, h) in handles.into_iter().enumerate() {
            h.join().unwrap_or_else(|_| {
                panic!("acc worker {worker} (caller rank {}) panicked", worker % 2)
            });
        }
        let mut out = vec![0.0; 8];
        a.get(0, 0, &mut out);
        assert!(out.iter().all(|&v| v == 4000.0), "{out:?}");
    }

    // ------------------------------------------------ reliable link -----

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            backoff_base: std::time::Duration::from_millis(1),
            backoff_cap: std::time::Duration::from_millis(4),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn link_retransmits_through_dropped_and_corrupt_window_requests() {
        let plan = FaultPlan::parse("3:drop@0->1#1,corrupt@0->1#2").unwrap();
        for mode in [DdiMode::Mpi3OneSided, DdiMode::DataServer] {
            let a = DistributedArray::new_with_mode(100, 4, mode) // seg_len 25
                .with_faults(&plan, fast_policy());
            // First remote request on edge 0 -> 1 is dropped, its
            // retransmission is corrupted, the third copy lands.
            a.put(0, 25, &[2.0; 25]);
            let mut out = vec![0.0; 25];
            a.get(0, 25, &mut out);
            assert_eq!(out, vec![2.0; 25], "{}", mode.label());
            let s = a.link_stats();
            assert_eq!(s.retransmits, 2, "{}", mode.label());
            assert_eq!(s.corruptions_detected, 1);
            assert_eq!(s.transient_recoveries, 1, "one request recovered (after two faults)");
            assert_eq!(s.faults_injected, 2);
            assert_eq!(s.acks, s.messages, "every request was eventually delivered");
        }
    }

    #[test]
    fn link_faults_do_not_fire_on_local_one_sided_access() {
        let plan = FaultPlan::parse("3:drop@0->0#1").unwrap();
        let a = DistributedArray::new(100, 4).with_faults(&plan, fast_policy());
        a.put(0, 0, &[1.0; 25]); // own segment: a direct store, no link message
        assert_eq!(a.link_stats().messages, 0);
        assert_eq!(a.link_stats().faults_injected, 0);
        // Data servers route even local access through the link.
        let ds = DistributedArray::new_with_mode(100, 4, DdiMode::DataServer)
            .with_faults(&plan, fast_policy());
        ds.put(0, 0, &[1.0; 25]);
        assert_eq!(ds.link_stats().messages, 1);
        assert_eq!(ds.link_stats().retransmits, 1, "the local-edge drop fired and was absorbed");
    }

    #[test]
    fn link_budget_exhaustion_panics_with_a_named_edge() {
        let plan = FaultPlan::parse("3:drop@0->1#1,drop@0->1#2").unwrap();
        let mut policy = fast_policy();
        policy.max_attempts = 2;
        let a = DistributedArray::new(100, 4).with_faults(&plan, policy);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.put(0, 25, &[1.0; 25]);
        }))
        .expect_err("an exhausted link budget must not silently drop the put");
        let msg = err.downcast_ref::<String>().expect("panic payload is a String");
        assert!(msg.contains("rank 0 -> rank 1"), "panic names the edge: {msg}");
        assert!(msg.contains("2 attempts"), "panic names the budget: {msg}");
    }

    #[test]
    fn unfaulted_window_reports_zero_link_stats() {
        let a = DistributedArray::new(10, 2);
        a.put(0, 5, &[1.0; 5]);
        assert_eq!(a.link_stats(), LinkStats::default());
    }
}
