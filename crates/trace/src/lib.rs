//! Feature-gated span/counter tracing for the phi-scf stack.
//!
//! The paper's headline claims are *timing-breakdown* claims: DLB wait
//! time, Fock-flush overhead, per-thread load imbalance (Fig. 8's
//! max/mean thread busy time). Aggregate counters cannot show where a
//! build spends its time, so this crate adds the missing layer: every
//! actor — an `(rank, thread)` pair — records a private, lock-free
//! stream of timestamped events, and a [`TraceSession`] collects the
//! streams into a [`TraceReport`] with per-stream histograms, imbalance
//! ratios, DLB wait totals, Chrome `trace_event` JSON export and a
//! machine-readable [`TraceSummary`] that shares its schema with the
//! `knlsim` performance model.
//!
//! # Cost model
//!
//! * **Feature off (default):** every entry point below is an empty
//!   `#[inline(always)]` function — call sites compile to nothing, and
//!   none of the TLS/sink machinery exists in the binary.
//! * **Feature on, no active session:** one relaxed atomic load per
//!   call.
//! * **Feature on, active session:** a `Vec` push into a thread-local
//!   buffer plus one monotonic-clock read. No locks are taken on the
//!   hot path; buffers drain into the global sink only when a thread
//!   exits (scoped rank/team threads) or its ids change.
//!
//! Instrumented code emits *O(tasks × threads)* events, never
//! per-quartet events; counters accumulate in plain locals and are
//! recorded once per thread per build. The overhead budget (≤ 2 % on
//! the engine-serial Fock build) is asserted by
//! `benches/trace_overhead.rs`.
//!
//! # Span taxonomy
//!
//! | name | emitted by |
//! |------|------------|
//! | `omp.loop` | worksharing loop body (per-thread busy time) |
//! | `omp.barrier_wait` | team barrier wait |
//! | `dlb.wait` | `Rank::lease_next` (claim + poll until a task arrives) |
//! | `mpi.gsum` | fault-tolerant global sum |
//! | `mpi.barrier` | fault-tolerant world barrier |
//! | `fock.build` | one builder invocation (per rank) |
//! | `fock.flush_fi` / `fock.flush_fj` / `fock.flush_scatter` | shared-Fock / distributed flushes |
//! | `scf.iteration` / `scf.fock` / `scf.diag` / `scf.diis` | SCF/UHF driver phases |
//!
//! Instants: `rank.died` (value = rank id), `task.reissued`
//! (value = task, aux = original claimant). Counters: `quartets_computed`,
//! `flushes`, `dlb.calls`, `tasks.reclaimed` — each reconciles exactly
//! with the corresponding `FockBuildStats` field (see
//! `tests/trace_invariants.rs`).

mod chrome;
mod report;

pub use report::{Histogram, InstantEvent, TraceReport, TraceSummary};

/// One timestamped trace event. Timestamps are nanoseconds since the
/// process-wide trace epoch (the first clock read in the process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Span open; closed by the matching `End` with the same name.
    Begin { name: &'static str, t: u64 },
    /// Span close. Spans on one stream close LIFO (RAII guards), so
    /// streams are always properly nested.
    End { name: &'static str, t: u64 },
    /// A point event: `value`/`aux` carry event-specific payload
    /// (e.g. the dead rank id, or a reissued task and its original
    /// claimant).
    Instant { name: &'static str, t: u64, value: u64, aux: u64 },
    /// A monotone counter contribution; the report sums all
    /// contributions with the same name.
    Counter { name: &'static str, t: u64, value: u64 },
}

impl Event {
    /// Timestamp of the event, ns since the trace epoch.
    pub fn t(&self) -> u64 {
        match *self {
            Event::Begin { t, .. }
            | Event::End { t, .. }
            | Event::Instant { t, .. }
            | Event::Counter { t, .. } => t,
        }
    }

    /// Name of the event.
    pub fn name(&self) -> &'static str {
        match *self {
            Event::Begin { name, .. }
            | Event::End { name, .. }
            | Event::Instant { name, .. }
            | Event::Counter { name, .. } => name,
        }
    }
}

/// The events recorded by one `(rank, thread)` actor, in program order.
#[derive(Clone, Debug, Default)]
pub struct Stream {
    pub rank: u32,
    pub thread: u32,
    pub events: Vec<Event>,
}

/// True when the crate was compiled with the `trace` feature.
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

// ---------------------------------------------------------------------
// Recording runtime (feature on)
// ---------------------------------------------------------------------

#[cfg(feature = "trace")]
mod rt {
    use super::{Event, Stream};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Instant;

    pub(crate) static ACTIVE: AtomicBool = AtomicBool::new(false);
    pub(crate) static SINK: Mutex<Vec<Stream>> = Mutex::new(Vec::new());
    pub(crate) static SESSION: Mutex<()> = Mutex::new(());
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    #[inline]
    pub(crate) fn active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        // A poisoning panic in one tracing test must not wedge the rest
        // of the binary: the sink holds plain data, safe to keep using.
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Per-OS-thread event buffer. Flushes itself into the global sink
    /// when the thread exits (TLS destructor) — scoped rank/team
    /// threads always terminate before their world/team call returns,
    /// so by the time a build returns, every stream it produced is in
    /// the sink. The long-lived session thread is flushed by
    /// `TraceSession::finish`.
    pub(crate) struct Local {
        rank: u32,
        thread: u32,
        pub(crate) events: Vec<Event>,
    }

    impl Local {
        pub(crate) fn flush(&mut self) {
            if self.events.is_empty() {
                return;
            }
            let stream = Stream {
                rank: self.rank,
                thread: self.thread,
                events: std::mem::take(&mut self.events),
            };
            lock(&SINK).push(stream);
        }
    }

    impl Drop for Local {
        fn drop(&mut self) {
            self.flush();
        }
    }

    thread_local! {
        static LOCAL: RefCell<Local> = const {
            RefCell::new(Local { rank: 0, thread: 0, events: Vec::new() })
        };
    }

    #[inline]
    pub(crate) fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
        LOCAL.with(|l| f(&mut l.borrow_mut()))
    }

    #[inline]
    pub(crate) fn push(ev: Event) {
        with_local(|l| l.events.push(ev));
    }

    pub(crate) fn set_ids(rank: u32, thread: u32) {
        with_local(|l| {
            if (l.rank, l.thread) != (rank, thread) {
                // One OS thread can play several roles over time (the
                // session thread is also rank 0's master in serial
                // tests): close out the old stream segment first.
                l.flush();
                l.rank = rank;
                l.thread = thread;
            }
        });
    }

    pub(crate) fn current_rank() -> u32 {
        with_local(|l| l.rank)
    }
}

// ---------------------------------------------------------------------
// Recording API — feature on
// ---------------------------------------------------------------------

/// RAII span guard: records `Event::End` when dropped. Guards drop in
/// LIFO order, which is what guarantees streams nest properly.
#[must_use = "a span measures the scope of this guard; binding it to _ drops it immediately"]
pub struct SpanGuard {
    #[cfg(feature = "trace")]
    name: Option<&'static str>,
}

#[cfg(feature = "trace")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            rt::push(Event::End { name, t: rt::now_ns() });
        }
    }
}

/// Open a span on the current thread's stream; it closes when the
/// returned guard drops.
#[cfg(feature = "trace")]
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if rt::active() {
        rt::push(Event::Begin { name, t: rt::now_ns() });
        SpanGuard { name: Some(name) }
    } else {
        SpanGuard { name: None }
    }
}

/// Record a point event with one payload value.
#[cfg(feature = "trace")]
#[inline]
pub fn instant(name: &'static str, value: u64) {
    instant_with(name, value, 0);
}

/// Record a point event with two payload values.
#[cfg(feature = "trace")]
#[inline]
pub fn instant_with(name: &'static str, value: u64, aux: u64) {
    if rt::active() {
        rt::push(Event::Instant { name, t: rt::now_ns(), value, aux });
    }
}

/// Add `value` to the counter `name`. Contributions from all streams
/// are summed by the report.
#[cfg(feature = "trace")]
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if rt::active() {
        rt::push(Event::Counter { name, t: rt::now_ns(), value });
    }
}

/// Tag the current OS thread as `(rank, thread)` for subsequent events.
#[cfg(feature = "trace")]
#[inline]
pub fn set_ids(rank: u32, thread: u32) {
    rt::set_ids(rank, thread);
}

/// Rank id last set on this thread (0 if never set).
#[cfg(feature = "trace")]
#[inline]
pub fn current_rank() -> u32 {
    rt::current_rank()
}

// ---------------------------------------------------------------------
// Recording API — feature off: every call compiles to nothing
// ---------------------------------------------------------------------

#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard {}
}

#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn instant(_name: &'static str, _value: u64) {}

#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn instant_with(_name: &'static str, _value: u64, _aux: u64) {}

#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn counter(_name: &'static str, _value: u64) {}

#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn set_ids(_rank: u32, _thread: u32) {}

#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn current_rank() -> u32 {
    0
}

/// Tag the current OS thread as the master (thread 0) of `rank`.
#[inline(always)]
pub fn set_rank(rank: u32) {
    set_ids(rank, 0);
}

/// Macro forms of the recording API; with the `trace` feature off they
/// expand to the same empty inline functions and compile to nothing.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $value:expr) => {
        $crate::counter($name, $value)
    };
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// An exclusive recording window. `begin` clears the global sink and
/// arms recording; `finish` disarms it and returns everything recorded
/// in between as a [`TraceReport`].
///
/// Sessions hold a global lock, so two sessions in one process
/// serialize — concurrent `#[test]`s that trace do not corrupt each
/// other's reports. With the `trace` feature off a session is free and
/// `finish` returns an empty report.
pub struct TraceSession {
    #[cfg(feature = "trace")]
    _guard: std::sync::MutexGuard<'static, ()>,
}

#[cfg(feature = "trace")]
impl TraceSession {
    pub fn begin() -> TraceSession {
        let guard = rt::lock(&rt::SESSION);
        // Drop anything the session thread buffered outside a session
        // (nothing should be there — recording is gated — but a
        // previous panicking session may have left partial state).
        rt::with_local(|l| l.events.clear());
        rt::lock(&rt::SINK).clear();
        rt::ACTIVE.store(true, std::sync::atomic::Ordering::SeqCst);
        TraceSession { _guard: guard }
    }

    pub fn finish(self) -> TraceReport {
        rt::ACTIVE.store(false, std::sync::atomic::Ordering::SeqCst);
        rt::with_local(|l| l.flush());
        let streams = std::mem::take(&mut *rt::lock(&rt::SINK));
        TraceReport::from_streams(streams)
    }
}

#[cfg(not(feature = "trace"))]
impl TraceSession {
    pub fn begin() -> TraceSession {
        TraceSession {}
    }

    pub fn finish(self) -> TraceReport {
        TraceReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_off_session_is_empty() {
        // Runs in both configurations; with the feature off it checks
        // the no-op path, with it on it checks an event-free session.
        let session = TraceSession::begin();
        let report = session.finish();
        assert!(report.streams.is_empty());
        assert_eq!(report.counter_total("anything"), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn spans_nest_and_counters_sum() {
        let session = TraceSession::begin();
        set_ids(0, 0);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                counter("work", 3);
            }
            counter("work", 4);
        }
        instant_with("mark", 7, 9);
        let report = session.finish();
        report.check_well_formed().unwrap();
        assert_eq!(report.counter_total("work"), 7);
        assert_eq!(report.span_count("outer"), 1);
        assert_eq!(report.span_count("inner"), 1);
        assert!(report.span_total_ns("outer") >= report.span_total_ns("inner"));
        let marks = report.instants("mark");
        assert_eq!(marks.len(), 1);
        assert_eq!((marks[0].value, marks[0].aux), (7, 9));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn inactive_gap_records_nothing() {
        {
            let _orphan = span("orphan"); // no session: must not record
            counter("orphan", 1);
        }
        let session = TraceSession::begin();
        set_ids(0, 0);
        counter("live", 1);
        let report = session.finish();
        assert_eq!(report.counter_total("orphan"), 0);
        assert_eq!(report.counter_total("live"), 1);
        report.check_well_formed().unwrap();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn threads_get_separate_streams() {
        let session = TraceSession::begin();
        set_ids(0, 0);
        let _root = span("root");
        std::thread::scope(|s| {
            for t in 1..4u32 {
                s.spawn(move || {
                    set_ids(0, t);
                    let _s = span("leaf");
                    counter("per_thread", 1);
                });
            }
        });
        drop(_root);
        let report = session.finish();
        report.check_well_formed().unwrap();
        assert_eq!(report.counter_total("per_thread"), 3);
        assert_eq!(report.span_count("leaf"), 3);
        // Three worker streams plus the session thread's own.
        assert_eq!(report.streams.len(), 4);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn set_ids_splits_segments_and_report_remerges() {
        let session = TraceSession::begin();
        set_ids(2, 0);
        counter("a", 1);
        set_ids(3, 0); // flushes the (2, 0) segment
        counter("a", 2);
        set_ids(2, 0); // back: a second (2, 0) segment
        counter("a", 4);
        let report = session.finish();
        assert_eq!(report.counter_total("a"), 7);
        // Per-(rank, thread) merge: exactly two streams remain.
        assert_eq!(report.streams.len(), 2);
        let r2: Vec<_> = report.streams.iter().filter(|s| s.rank == 2).collect();
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].events.len(), 2);
    }
}
