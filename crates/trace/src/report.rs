//! Trace analysis: merging streams, deriving the paper's breakdown
//! metrics (per-thread busy time, imbalance ratio, DLB wait), span
//! histograms, well-formedness checks, and the machine-readable
//! summary shared with `knlsim`.

use crate::{Event, Stream};
use std::collections::BTreeMap;

/// A point event, resolved with its owning stream's ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstantEvent {
    pub rank: u32,
    pub thread: u32,
    pub name: &'static str,
    pub t: u64,
    pub value: u64,
    pub aux: u64,
}

/// Fixed-width histogram over span durations (nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub lo_ns: u64,
    pub hi_ns: u64,
    pub bin_width_ns: u64,
    pub bins: Vec<u64>,
}

impl Histogram {
    pub fn total_count(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// Everything one [`crate::TraceSession`] recorded, merged per
/// `(rank, thread)` actor, plus derived breakdown metrics.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// One stream per `(rank, thread)` actor, sorted by ids; events in
    /// recording order (segments concatenated in time order).
    pub streams: Vec<Stream>,
}

impl TraceReport {
    /// Merge raw stream segments (one per TLS flush) into one stream
    /// per `(rank, thread)` actor. Segments of the same actor never
    /// overlap in time — an actor is a single OS thread at any given
    /// moment — so concatenating them in order of first timestamp
    /// preserves program order.
    pub fn from_streams(segments: Vec<Stream>) -> Self {
        let mut by_id: BTreeMap<(u32, u32), Vec<Stream>> = BTreeMap::new();
        for seg in segments {
            if seg.events.is_empty() {
                continue;
            }
            by_id.entry((seg.rank, seg.thread)).or_default().push(seg);
        }
        let streams = by_id
            .into_iter()
            .map(|((rank, thread), mut segs)| {
                segs.sort_by_key(|s| s.events.first().map(Event::t).unwrap_or(0));
                let events = segs.into_iter().flat_map(|s| s.events).collect();
                Stream { rank, thread, events }
            })
            .collect();
        TraceReport { streams }
    }

    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Earliest and latest timestamp across all streams.
    pub fn time_bounds_ns(&self) -> Option<(u64, u64)> {
        let mut bounds: Option<(u64, u64)> = None;
        for ev in self.streams.iter().flat_map(|s| s.events.iter()) {
            let t = ev.t();
            bounds = Some(match bounds {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
        }
        bounds
    }

    // -- counters ------------------------------------------------------

    /// Sum of all contributions to each counter, across all streams.
    pub fn counter_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for ev in self.streams.iter().flat_map(|s| s.events.iter()) {
            if let Event::Counter { name, value, .. } = *ev {
                *totals.entry(name).or_insert(0) += value;
            }
        }
        totals
    }

    pub fn counter_total(&self, name: &str) -> u64 {
        self.streams
            .iter()
            .flat_map(|s| s.events.iter())
            .filter_map(|ev| match *ev {
                Event::Counter { name: n, value, .. } if n == name => Some(value),
                _ => None,
            })
            .sum()
    }

    // -- instants ------------------------------------------------------

    pub fn instants(&self, name: &str) -> Vec<InstantEvent> {
        let mut out = Vec::new();
        for s in &self.streams {
            for ev in &s.events {
                if let Event::Instant { name: n, t, value, aux } = *ev {
                    if n == name {
                        out.push(InstantEvent {
                            rank: s.rank,
                            thread: s.thread,
                            name: n,
                            t,
                            value,
                            aux,
                        });
                    }
                }
            }
        }
        out.sort_by_key(|i| i.t);
        out
    }

    // -- spans ---------------------------------------------------------

    /// Walk every closed span of a stream: `f(name, t_begin, t_end,
    /// depth)` where depth 0 is top level. Spans close LIFO on a
    /// stream, so a simple stack recovers the tree.
    pub fn for_each_span_in(stream: &Stream, mut f: impl FnMut(&'static str, u64, u64, usize)) {
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        for ev in &stream.events {
            match *ev {
                Event::Begin { name, t } => stack.push((name, t)),
                Event::End { t, .. } => {
                    if let Some((name, t0)) = stack.pop() {
                        f(name, t0, t, stack.len());
                    }
                }
                _ => {}
            }
        }
    }

    /// Durations (ns) of every completed span named `name`.
    pub fn span_durations_ns(&self, name: &str) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &self.streams {
            Self::for_each_span_in(s, |n, t0, t1, _| {
                if n == name {
                    out.push(t1.saturating_sub(t0));
                }
            });
        }
        out
    }

    pub fn span_count(&self, name: &str) -> usize {
        self.span_durations_ns(name).len()
    }

    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.span_durations_ns(name).iter().sum()
    }

    /// Total time in spans named `name`, per `(rank, thread)` stream.
    pub fn span_total_by_stream(&self, name: &str) -> BTreeMap<(u32, u32), u64> {
        let mut out = BTreeMap::new();
        for s in &self.streams {
            let mut total = 0u64;
            Self::for_each_span_in(s, |n, t0, t1, _| {
                if n == name {
                    total += t1.saturating_sub(t0);
                }
            });
            if total > 0 {
                out.insert((s.rank, s.thread), total);
            }
        }
        out
    }

    /// Total time in spans named `name`, per rank (all threads summed).
    pub fn span_total_by_rank(&self, name: &str) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for ((rank, _), ns) in self.span_total_by_stream(name) {
            *out.entry(rank).or_insert(0) += ns;
        }
        out
    }

    /// Histogram of `name` span durations with `n_bins` equal-width
    /// bins spanning [min, max]. `None` if no such span completed.
    pub fn histogram_ns(&self, name: &str, n_bins: usize) -> Option<Histogram> {
        let durations = self.span_durations_ns(name);
        if durations.is_empty() || n_bins == 0 {
            return None;
        }
        let lo = *durations.iter().min().unwrap();
        let hi = *durations.iter().max().unwrap();
        // Smallest equal width whose n_bins bins tightly cover [lo, hi]:
        // ceil((hi - lo) / n_bins), clamped to 1 for the all-equal case.
        // (The old `(hi - lo) / n_bins + 1` overstated the width whenever
        // n_bins divides the range — e.g. hi - lo = 8 with 4 bins reported
        // width 3, covering 12 ns of an 8 ns range.)
        let width = (hi - lo).div_ceil(n_bins as u64).max(1);
        let mut bins = vec![0u64; n_bins];
        for d in durations {
            // `d == hi` lands exactly on the upper edge when the range is
            // a multiple of the width; clamp it into the last bin.
            let idx = ((d - lo) / width) as usize;
            bins[idx.min(n_bins - 1)] += 1;
        }
        Some(Histogram { lo_ns: lo, hi_ns: hi, bin_width_ns: width, bins })
    }

    // -- the paper's breakdown metrics ---------------------------------

    /// Per-thread busy time: the sum of `omp.loop` span durations of
    /// each `(rank, thread)` stream — the time a thread spent inside
    /// worksharing loop bodies, the quantity behind the paper's Fig. 8.
    pub fn per_thread_busy_ns(&self) -> BTreeMap<(u32, u32), u64> {
        self.span_total_by_stream("omp.loop")
    }

    /// Fig. 8's load-imbalance metric for one rank's team: max/mean of
    /// per-thread busy time. 1.0 is perfect balance; `None` if the
    /// rank recorded no worksharing loops.
    pub fn imbalance_ratio(&self, rank: u32) -> Option<f64> {
        let busy: Vec<u64> = self
            .per_thread_busy_ns()
            .into_iter()
            .filter(|((r, _), _)| *r == rank)
            .map(|(_, ns)| ns)
            .collect();
        if busy.is_empty() {
            return None;
        }
        let max = *busy.iter().max().unwrap() as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean == 0.0 {
            return None;
        }
        Some(max / mean)
    }

    /// Imbalance ratio for every rank that ran worksharing loops.
    pub fn imbalance_ratios(&self) -> BTreeMap<u32, f64> {
        let mut ranks: Vec<u32> = self.per_thread_busy_ns().keys().map(|&(r, _)| r).collect();
        ranks.dedup();
        ranks.into_iter().filter_map(|r| self.imbalance_ratio(r).map(|x| (r, x))).collect()
    }

    /// Total time all ranks spent waiting on the DLB counter.
    pub fn dlb_wait_total_ns(&self) -> u64 {
        self.span_total_ns("dlb.wait")
    }

    /// DLB wait per rank.
    pub fn dlb_wait_by_rank_ns(&self) -> BTreeMap<u32, u64> {
        self.span_total_by_rank("dlb.wait")
    }

    // -- well-formedness ----------------------------------------------

    /// Structural invariants every report must satisfy:
    /// * per stream, Begin/End bracket like parentheses with matching
    ///   names (RAII guards make this automatic);
    /// * timestamps are monotone non-decreasing within a stream;
    /// * every span ends no earlier than it begins;
    /// * no span is left open.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for s in &self.streams {
            let who = format!("stream (rank {}, thread {})", s.rank, s.thread);
            let mut stack: Vec<(&'static str, u64)> = Vec::new();
            let mut prev_t = 0u64;
            for ev in &s.events {
                let t = ev.t();
                if t < prev_t {
                    return Err(format!(
                        "{who}: timestamp went backwards ({t} after {prev_t} at {ev:?})"
                    ));
                }
                prev_t = t;
                match *ev {
                    Event::Begin { name, t } => stack.push((name, t)),
                    Event::End { name, t } => match stack.pop() {
                        Some((open, t0)) => {
                            if open != name {
                                return Err(format!(
                                    "{who}: End({name}) closes Begin({open}) — spans must nest"
                                ));
                            }
                            if t < t0 {
                                return Err(format!("{who}: span {name} ends before it begins"));
                            }
                        }
                        None => return Err(format!("{who}: End({name}) with no open span")),
                    },
                    _ => {}
                }
            }
            if let Some((open, _)) = stack.last() {
                return Err(format!("{who}: span {open} never closed"));
            }
        }
        Ok(())
    }

    // -- exports -------------------------------------------------------

    /// Chrome `trace_event` JSON (load in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev)). pid = rank, tid = thread.
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::render(self)
    }

    /// The machine-readable breakdown. Shares its schema with
    /// `knlsim`'s simulated results so measured and modeled breakdowns
    /// can sit in one table:
    /// * `fock_seconds` — max over ranks of total `fock.build` time;
    /// * `reduction_seconds` — max over ranks of total `mpi.gsum` time;
    /// * `total_seconds` — wall span of the whole recording;
    /// * `busy_fraction` — mean/max of per-thread busy time (1.0 =
    ///   perfectly balanced team, the inverse view of
    ///   [`imbalance_ratio`](Self::imbalance_ratio)).
    pub fn summary(&self) -> TraceSummary {
        let ns = 1e-9;
        let fock_seconds =
            self.span_total_by_rank("fock.build").values().copied().max().unwrap_or(0) as f64 * ns;
        let reduction_seconds =
            self.span_total_by_rank("mpi.gsum").values().copied().max().unwrap_or(0) as f64 * ns;
        let total_seconds =
            self.time_bounds_ns().map(|(lo, hi)| (hi - lo) as f64 * ns).unwrap_or(0.0);
        let busy: Vec<u64> = self.per_thread_busy_ns().into_values().collect();
        let busy_fraction = if busy.is_empty() {
            1.0
        } else {
            let max = *busy.iter().max().unwrap() as f64;
            let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
            if max == 0.0 {
                1.0
            } else {
                mean / max
            }
        };
        TraceSummary { fock_seconds, reduction_seconds, total_seconds, busy_fraction }
    }
}

/// Stable machine-readable breakdown: the schema is shared between
/// measured traces ([`TraceReport::summary`]) and `knlsim` simulated
/// results, so `benches/` and EXPERIMENTS.md can compare the two
/// directly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceSummary {
    pub fock_seconds: f64,
    pub reduction_seconds: f64,
    pub total_seconds: f64,
    pub busy_fraction: f64,
}

impl TraceSummary {
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"fock_seconds\":{},\"reduction_seconds\":{},",
                "\"total_seconds\":{},\"busy_fraction\":{}}}"
            ),
            self.fock_seconds, self.reduction_seconds, self.total_seconds, self.busy_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_begin(name: &'static str, t: u64) -> Event {
        Event::Begin { name, t }
    }
    fn ev_end(name: &'static str, t: u64) -> Event {
        Event::End { name, t }
    }

    fn stream(rank: u32, thread: u32, events: Vec<Event>) -> Stream {
        Stream { rank, thread, events }
    }

    #[test]
    fn merges_segments_in_time_order() {
        let report = TraceReport::from_streams(vec![
            stream(0, 0, vec![ev_begin("b", 50), ev_end("b", 60)]),
            stream(0, 0, vec![ev_begin("a", 10), ev_end("a", 20)]),
        ]);
        assert_eq!(report.streams.len(), 1);
        report.check_well_formed().unwrap();
        assert_eq!(report.streams[0].events[0], ev_begin("a", 10));
        assert_eq!(report.time_bounds_ns(), Some((10, 60)));
    }

    #[test]
    fn span_totals_and_histogram() {
        let report = TraceReport::from_streams(vec![stream(
            0,
            0,
            vec![ev_begin("x", 0), ev_end("x", 100), ev_begin("x", 100), ev_end("x", 400)],
        )]);
        assert_eq!(report.span_count("x"), 2);
        assert_eq!(report.span_total_ns("x"), 400);
        let h = report.histogram_ns("x", 4).unwrap();
        assert_eq!(h.total_count(), 2);
        assert_eq!((h.lo_ns, h.hi_ns), (100, 300));
    }

    /// Pins the histogram bin edges: `width = ceil((hi - lo) / n_bins)`,
    /// so `lo + n_bins * width` tightly covers `hi`. The old
    /// `(hi - lo) / n_bins + 1` width reported 3 here (covering 12 ns of
    /// an 8 ns range) and misbinned the upper half of the durations.
    #[test]
    fn histogram_bin_edges_tightly_cover_the_range() {
        // Nine spans with durations 0..=8 ns.
        let events: Vec<Event> =
            (0u64..=8).flat_map(|d| [ev_begin("x", 100 * d), ev_end("x", 100 * d + d)]).collect();
        let report = TraceReport::from_streams(vec![stream(0, 0, events)]);
        let h = report.histogram_ns("x", 4).unwrap();
        assert_eq!((h.lo_ns, h.hi_ns), (0, 8));
        assert_eq!(h.bin_width_ns, 2, "ceil(8 / 4) = 2, not 8 / 4 + 1 = 3");
        assert_eq!(h.lo_ns + 4 * h.bin_width_ns, h.hi_ns, "bins tightly cover [lo, hi]");
        // Bins [0,2) [2,4) [4,6) [6,8]: d = 8 sits on the upper edge and
        // clamps into the last bin.
        assert_eq!(h.bins, vec![2, 2, 2, 3]);
        assert_eq!(h.total_count(), 9);

        // Degenerate range: all durations equal -> width clamps to 1.
        let report = TraceReport::from_streams(vec![stream(
            0,
            0,
            vec![ev_begin("y", 0), ev_end("y", 5), ev_begin("y", 10), ev_end("y", 15)],
        )]);
        let h = report.histogram_ns("y", 3).unwrap();
        assert_eq!(h.bin_width_ns, 1);
        assert_eq!(h.bins, vec![2, 0, 0]);
    }

    #[test]
    fn imbalance_ratio_matches_hand_computation() {
        // Thread busy times 100 and 300 -> max/mean = 300/200 = 1.5.
        let report = TraceReport::from_streams(vec![
            stream(0, 0, vec![ev_begin("omp.loop", 0), ev_end("omp.loop", 100)]),
            stream(0, 1, vec![ev_begin("omp.loop", 0), ev_end("omp.loop", 300)]),
        ]);
        let r = report.imbalance_ratio(0).unwrap();
        assert!((r - 1.5).abs() < 1e-12, "got {r}");
        let s = report.summary();
        assert!((s.busy_fraction - 200.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn well_formed_rejects_mismatched_nesting() {
        let report = TraceReport::from_streams(vec![stream(
            0,
            0,
            vec![ev_begin("a", 0), ev_begin("b", 1), ev_end("a", 2), ev_end("b", 3)],
        )]);
        assert!(report.check_well_formed().is_err());
    }

    #[test]
    fn well_formed_rejects_unclosed_span() {
        let report = TraceReport::from_streams(vec![stream(0, 0, vec![ev_begin("a", 0)])]);
        assert!(report.check_well_formed().is_err());
    }

    #[test]
    fn summary_json_is_stable() {
        let s = TraceSummary {
            fock_seconds: 1.5,
            reduction_seconds: 0.25,
            total_seconds: 2.0,
            busy_fraction: 0.75,
        };
        assert_eq!(
            s.to_json(),
            "{\"fock_seconds\":1.5,\"reduction_seconds\":0.25,\
             \"total_seconds\":2,\"busy_fraction\":0.75}"
        );
    }
}
