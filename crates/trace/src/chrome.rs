//! Chrome `trace_event` JSON export (the "JSON Array Format" consumed
//! by `chrome://tracing` and Perfetto). Hand-rolled like every other
//! serializer in this workspace — the event vocabulary is four `ph`
//! codes, not worth a dependency.

use crate::{Event, TraceReport};
use std::fmt::Write;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_common(out: &mut String, name: &str, ph: char, pid: u32, tid: u32, t_ns: u64) {
    out.push_str("{\"name\":\"");
    escape(name, out);
    // ts is microseconds; keep ns resolution in the fraction.
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}.{:03}",
        t_ns / 1000,
        t_ns % 1000
    );
}

/// Render a report as a self-contained Chrome trace JSON document.
pub(crate) fn render(report: &TraceReport) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for s in &report.streams {
        for ev in &s.events {
            if !first {
                out.push(',');
            }
            first = false;
            match *ev {
                Event::Begin { name, t } => {
                    push_common(&mut out, name, 'B', s.rank, s.thread, t);
                    out.push('}');
                }
                Event::End { name, t } => {
                    push_common(&mut out, name, 'E', s.rank, s.thread, t);
                    out.push('}');
                }
                Event::Instant { name, t, value, aux } => {
                    push_common(&mut out, name, 'i', s.rank, s.thread, t);
                    let _ = write!(
                        &mut out,
                        ",\"s\":\"t\",\"args\":{{\"value\":{value},\"aux\":{aux}}}}}"
                    );
                }
                Event::Counter { name, t, value } => {
                    push_common(&mut out, name, 'C', s.rank, s.thread, t);
                    out.push_str(",\"args\":{\"");
                    escape(name, &mut out);
                    let _ = write!(&mut out, "\":{value}}}}}");
                }
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stream;

    #[test]
    fn renders_all_event_kinds() {
        let report = TraceReport::from_streams(vec![Stream {
            rank: 1,
            thread: 2,
            events: vec![
                Event::Begin { name: "fock.build", t: 1500 },
                Event::Instant { name: "rank.died", t: 1600, value: 3, aux: 0 },
                Event::Counter { name: "quartets_computed", t: 1700, value: 42 },
                Event::End { name: "fock.build", t: 2750 },
            ],
        }]);
        let json = report.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ts\":2.750"));
        assert!(json.contains("\"pid\":1,\"tid\":2"));
        assert!(json.contains("\"quartets_computed\":42"));
        // Balanced braces: crude but catches truncation bugs.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
