//! Minimal self-contained microbenchmark harness.
//!
//! The workspace builds with no external dependencies (so it compiles and
//! tests offline); this module stands in for Criterion in the `benches/`
//! binaries. Protocol: warm up, grow the iteration count until one timing
//! window is long enough to trust, then report the best of several windows
//! (minimum wall time per iteration is the standard low-noise estimator for
//! microbenchmarks).
//!
//! Benches run with `cargo bench` (each `[[bench]]` is `harness = false`)
//! and print one line per case: `<name>: <ns>/iter (<iters> iters)`.
//! [`Runner::to_json`] serializes results for files like `BENCH_pr1.json`.

pub use std::hint::black_box;
use std::time::Instant;

/// Smoke mode (set `PHI_BENCH_SMOKE=1`): shrink windows and sample counts
/// so every bench binary runs in seconds. CI uses this to keep the benches
/// compiling *and executing* without paying for statistically meaningful
/// timings; numbers published in BENCH_*.json files come from full mode.
pub fn smoke_mode() -> bool {
    std::env::var_os("PHI_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Minimum measurement window per timing sample.
fn window_s() -> f64 {
    if smoke_mode() {
        0.002
    } else {
        0.05
    }
}

/// Number of measured windows; the fastest is reported.
fn samples() -> usize {
    if smoke_mode() {
        1
    } else {
        3
    }
}

/// One benchmark result.
#[derive(Clone, Debug)]
pub struct Sample {
    pub name: String,
    /// Best-of-windows nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per window used for measurement.
    pub iters: u64,
}

/// Collects samples of one benchmark group and prints them as they finish.
pub struct Runner {
    group: String,
    pub samples: Vec<Sample>,
}

impl Runner {
    pub fn new(group: &str) -> Runner {
        println!("# group: {group}");
        Runner { group: group.to_string(), samples: Vec::new() }
    }

    /// Time `f` and record the result under `name`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> &Sample {
        // Warm-up and iteration-count calibration: double until one window
        // is at least WINDOW_S long.
        let window = window_s();
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = start.elapsed().as_secs_f64();
            if dt >= window {
                break;
            }
            // Aim directly for the window once a measurable time exists.
            iters = if dt > 1e-4 {
                ((iters as f64 * window / dt).ceil() as u64).max(iters + 1)
            } else {
                iters * 10
            };
        }
        let mut best = f64::INFINITY;
        for _ in 0..samples() {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        let sample = Sample { name: name.to_string(), ns_per_iter: best, iters };
        println!("{}/{}: {:.1} ns/iter ({} iters)", self.group, name, best, iters);
        self.samples.push(sample);
        self.samples.last().expect("just pushed")
    }

    /// Serialize the group's samples as a JSON object (no external crates,
    /// so the encoding is hand-rolled for this flat shape).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n  \"results\": [\n", self.group));
        for (k, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"iters\": {}}}{}\n",
                s.name.replace('"', "'"),
                s.ns_per_iter,
                s.iters,
                if k + 1 == self.samples.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_plausible() {
        let mut r = Runner::new("selftest");
        let s = r.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
        });
        assert!(s.ns_per_iter > 0.0 && s.ns_per_iter < 1e7);
        let json = r.to_json();
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("\"name\": \"spin\""));
    }
}
