//! Runs every experiment of the paper in sequence (Tables 2–4, Figures
//! 3–7, and the ablations). Pass `--quick` for the CI-sized smoke variant.

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;
use std::process::Command;

fn main() {
    let quick = quick_mode();

    // Table 2 / Table 4 live in their own binary (they need no workload);
    // invoke it if available, otherwise skip gracefully (e.g. `cargo run`
    // of this binary alone).
    let exe = std::env::current_exe().ok().and_then(|p| {
        let sibling = p.with_file_name(if cfg!(windows) { "table2.exe" } else { "table2" });
        sibling.exists().then_some(sibling)
    });
    match exe {
        Some(table2) => {
            let out = Command::new(table2).output().expect("run table2");
            print!("{}", String::from_utf8_lossy(&out.stdout));
        }
        None => eprintln!(
            "[skip] table2 binary not built alongside; run `cargo run -p phi-bench --bin table2`"
        ),
    }

    // Single-node studies on the 1.0 nm dataset.
    let ctx10 = context(PaperSystem::Nm10, quick);
    println!("{}", scenarios::fig3(&ctx10));
    println!("{}", scenarios::fig4(&ctx10));

    // Mode study on 0.5 nm + 2.0 nm.
    let ctx05 = context(PaperSystem::Nm05, quick);
    let mut ctx20 = context(PaperSystem::Nm20, quick);
    println!("{}", scenarios::fig5(&ctx05, &ctx20));

    // Multi-node scaling (anchored) on 2.0 nm.
    if !quick {
        let scale = ctx20.anchor(4, 1318.0);
        eprintln!("[anchor] time scale {scale:.3}");
    }
    println!("{}", scenarios::fig6_table3(&ctx20));

    // 5.0 nm at up to 3,000 nodes.
    let ctx50 = context(PaperSystem::Nm50, quick);
    println!("{}", scenarios::fig7(&ctx50));

    // Ablations. The ij-task prescreen matters most for the sparsest
    // system (paper: "especially important for very large jobs with very
    // sparse ERI tensor"), so it also runs on the 5.0 nm workload.
    println!("{}", scenarios::ablation_flush(&ctx10));
    println!("{}", scenarios::ablation_prescreen(&ctx10));
    println!("{}", scenarios::ablation_prescreen(&ctx50));
    println!("{}", scenarios::ablation_schedule(&ctx10));
    println!("{}", scenarios::ablation_loadbalance(&ctx10, 16));
    println!("{}", scenarios::crossover(&ctx20));

    // Robustness: what rank deaths cost under the task-lease recovery
    // protocol, volatile vs durable completion.
    println!("{}", scenarios::failure_recovery(&ctx10, 16));
}
