//! Regenerates Figure 5: time-to-solution under different KNL clustering
//! and memory modes for the small (0.5 nm) and large (2.0 nm) datasets.

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;

fn main() {
    let quick = quick_mode();
    let small = context(PaperSystem::Nm05, quick);
    let large = context(PaperSystem::Nm20, quick);
    phi_bench::emit(&scenarios::fig5(&small, &large), "fig5");
}
