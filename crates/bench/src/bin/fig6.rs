//! Regenerates Figure 6: multi-node scalability of the three codes
//! (2.0 nm dataset, 4–512 nodes), anchored to the paper's single published
//! shared-Fock point at 4 nodes (1318 s, Table 3).

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;

fn main() {
    let quick = quick_mode();
    let mut ctx = context(PaperSystem::Nm20, quick);
    if !quick {
        let scale = ctx.anchor(4, 1318.0);
        eprintln!("[anchor] time scale set to {scale:.3} (ShF @ 4 nodes == 1318 s)");
    }
    phi_bench::emit(&scenarios::fig6_table3(&ctx), "fig6_table3");
}
