//! Regenerates Figure 3: shared-Fock performance vs OpenMP thread affinity
//! type on a single node (1.0 nm dataset, 4 MPI ranks, 1–64 threads/rank,
//! quad-cache).

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;

fn main() {
    let ctx = context(PaperSystem::Nm10, quick_mode());
    phi_bench::emit(&scenarios::fig3(&ctx), "fig3");
}
