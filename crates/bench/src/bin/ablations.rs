//! Runs the design-choice ablations of DESIGN.md §5: lazy FI flushing,
//! ij-task prescreening, OpenMP schedule, and task-partitioning load
//! balance.

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;

fn main() {
    let quick = quick_mode();
    let ctx = context(PaperSystem::Nm10, quick);
    println!("{}", scenarios::ablation_flush(&ctx));
    println!("{}", scenarios::ablation_prescreen(&ctx));
    println!("{}", scenarios::ablation_schedule(&ctx));
    println!("{}", scenarios::ablation_loadbalance(&ctx, 16));
    println!("{}", scenarios::crossover(&ctx));
}
