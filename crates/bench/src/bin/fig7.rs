//! Regenerates Figure 7: shared-Fock scaling of the 5.0 nm dataset
//! (30,240 basis functions) up to 3,000 nodes / 192,000 cores.

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;

fn main() {
    let ctx = context(PaperSystem::Nm50, quick_mode());
    phi_bench::emit(&scenarios::fig7(&ctx), "fig7");
}
