//! Regenerates Figure 4: single-node scalability of the three codes with
//! respect to hardware threads (1.0 nm dataset, quad-cache).

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::scenarios;

fn main() {
    let ctx = context(PaperSystem::Nm10, quick_mode());
    phi_bench::emit(&scenarios::fig4(&ctx), "fig4");
}
