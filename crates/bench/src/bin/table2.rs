//! Regenerates Table 2 (memory footprints of the three codes for the five
//! graphene datasets) and the artifact's Table 4 (dataset characteristics),
//! from three independent sources:
//!
//! 1. the paper's eqs. (3a)–(3c) with the paper's configurations;
//! 2. the paper's printed values (for comparison);
//! 3. a *measured* footprint from actually running the three Fock builds
//!    at reduced rank/thread counts on a small real system, scaled by the
//!    configuration ratio — demonstrating that the tracker reproduces the
//!    replication hierarchy on live allocations.

use hf::memory_model::{Table2Row, PAPER_TABLE2_GB};
use hf::{DensitySet, FockAlgorithm, FockContext};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::graphene::PaperSystem;
use phi_chem::geom::small;
use phi_integrals::Screening;
use phi_knlsim::report::{fmt_gb, Table};
use phi_linalg::Mat;

fn main() {
    // ---------------------------------------------------------- Table 4 --
    let mut t4 = Table::new(
        "Table 4 (artifact) — dataset characteristics",
        &["name", "atoms", "shells", "basis functions"],
    );
    for sys in PaperSystem::ALL {
        let mol = sys.molecule();
        let basis = BasisSet::build(&mol, BasisName::B631gd);
        t4.row(vec![
            sys.label().into(),
            mol.n_atoms().to_string(),
            basis.n_shells().to_string(),
            basis.n_basis().to_string(),
        ]);
    }
    println!("{t4}");

    // ---------------------------------------------------------- Table 2 --
    let mut t2 = Table::new(
        "Table 2 — memory footprint per node (GB): model (eqs. 3a-3c) vs paper",
        &[
            "name",
            "MPI model",
            "MPI paper",
            "PrF model",
            "PrF paper",
            "ShF model",
            "ShF paper",
            "MPI/ShF ratio",
        ],
    );
    for (sys, &(p_mpi, p_prf, p_shf)) in PaperSystem::ALL.iter().zip(&PAPER_TABLE2_GB) {
        let row = Table2Row::compute(*sys);
        t2.row(vec![
            sys.label().into(),
            fmt_gb(row.gb_mpi),
            fmt_gb(p_mpi),
            fmt_gb(row.gb_private),
            fmt_gb(p_prf),
            fmt_gb(row.gb_shared),
            fmt_gb(p_shf),
            format!("{:.0}x", row.shared_ratio()),
        ]);
    }
    t2.note("model: 256 ranks/node (MPI) vs 4 ranks x 64 threads (hybrids), eqs. (3a)-(3c)");
    t2.note(
        "paper's measured MPI/ShF reduction: ~200x (incl. GAMESS structures beyond the equations)",
    );
    println!("{t2}");

    // ------------------------------------------------ measured (live) ----
    // A real (scaled-down) measurement: water/6-31G, 8 cores worth of
    // parallelism, tracked allocations from the actual builds.
    let mol = small::water();
    let basis = BasisSet::build(&mol, BasisName::B631g);
    let pairs = phi_integrals::ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let n = basis.n_basis();
    let d = Mat::identity(n);
    let cores = 8;
    let configs = [
        ("MPI-only (8 ranks)", FockAlgorithm::MpiOnly { n_ranks: cores }),
        ("private Fock (1x8)", FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: cores }),
        ("shared Fock (1x8)", FockAlgorithm::SharedFock { n_ranks: 1, n_threads: cores }),
    ];
    let mut tm = Table::new(
        "Measured footprints — live tracked allocations, water/6-31G, 8-way parallel",
        &["code", "peak bytes", "vs MPI-only"],
    );
    let ctx = FockContext::new(&basis, &pairs, &screening, 1e-10);
    let mut mpi_peak = 0usize;
    for (label, alg) in configs {
        let gb = alg.builder().build(&ctx, &DensitySet::Restricted(&d));
        if mpi_peak == 0 {
            mpi_peak = gb.stats.memory_total_peak;
        }
        tm.row(vec![
            label.into(),
            gb.stats.memory_total_peak.to_string(),
            format!("{:.1}x smaller", mpi_peak as f64 / gb.stats.memory_total_peak as f64),
        ]);
    }
    tm.note("the hierarchy (MPI >> private > shared) is measured on real allocations");
    println!("{tm}");
}
