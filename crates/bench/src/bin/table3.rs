//! Regenerates Table 3: time-to-solution and parallel efficiency of the
//! three codes on the 2.0 nm dataset, 4–512 nodes, printed side by side
//! with the paper's published values.

use phi_bench::{context, quick_mode};
use phi_chem::geom::graphene::PaperSystem;
use phi_knlsim::report::Table;
use phi_knlsim::scenarios::{self, PAPER_TABLE3};

fn main() {
    let quick = quick_mode();
    let mut ctx = context(PaperSystem::Nm20, quick);
    if !quick {
        let scale = ctx.anchor(4, 1318.0);
        eprintln!("[anchor] time scale set to {scale:.3} (ShF @ 4 nodes == 1318 s)");
    }
    println!("{}", scenarios::fig6_table3(&ctx));

    let mut paper = Table::new(
        "Table 3 — the paper's published values (for comparison)",
        &["nodes", "MPI s", "PrF s", "ShF s", "MPI eff%", "PrF eff%", "ShF eff%"],
    );
    for (nodes, times, effs) in PAPER_TABLE3 {
        paper.row(vec![
            nodes.to_string(),
            format!("{:.0}", times[0]),
            format!("{:.0}", times[1]),
            format!("{:.0}", times[2]),
            format!("{:.0}", effs[0]),
            format!("{:.0}", effs[1]),
            format!("{:.0}", effs[2]),
        ]);
    }
    println!("{paper}");
}
