//! Benchmark harness: shared setup for the experiment binaries that
//! regenerate every table and figure of the paper, plus Criterion
//! microbenches (in `benches/`).
//!
//! Binaries (see DESIGN.md §4 for the experiment index):
//!
//! | binary            | reproduces            |
//! |-------------------|-----------------------|
//! | `table2`          | Table 2 (+ Table 4)   |
//! | `fig3`            | Figure 3              |
//! | `fig4`            | Figure 4              |
//! | `fig5`            | Figure 5              |
//! | `fig6`            | Figure 6              |
//! | `table3`          | Table 3               |
//! | `fig7`            | Figure 7              |
//! | `ablations`       | DESIGN.md §5 ablations|
//! | `all_experiments` | everything above      |
//!
//! Every binary accepts `--quick` to substitute a small carbon-ring system
//! for the paper's graphene datasets (CI-friendly smoke mode); without it
//! the real datasets are generated and screened exactly.

pub mod microbench;

use phi_chem::basis::BasisName;
use phi_chem::geom::graphene::PaperSystem;
use phi_chem::geom::small;
use phi_knlsim::scenarios::Ctx;

/// Parse the common `--quick` flag.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parse the common `--csv <dir>` flag.
pub fn csv_dir() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--csv" {
            return Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| ".".into())));
        }
    }
    None
}

/// Print a table and, if `--csv <dir>` was given, also write `<dir>/<slug>.csv`.
pub fn emit(table: &phi_knlsim::report::Table, slug: &str) {
    println!("{table}");
    if let Some(dir) = csv_dir() {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("[csv] wrote {}", path.display());
    }
}

/// Context for a paper dataset, or a small stand-in under `--quick`.
///
/// Quick mode swaps the graphene flakes for carbon rings with the same
/// basis (identical shell classes, much smaller pair space) and skips
/// wall-clock calibration so output is deterministic.
pub fn context(system: PaperSystem, quick: bool) -> Ctx {
    if quick {
        let n_atoms = match system {
            PaperSystem::Nm05 => 6,
            PaperSystem::Nm10 => 8,
            PaperSystem::Nm15 => 10,
            PaperSystem::Nm20 => 12,
            PaperSystem::Nm50 => 16,
        };
        let mol = small::c_ring(n_atoms, 1.40);
        Ctx::from_molecule(
            &format!("{} (quick: C{} ring)", system.label(), n_atoms),
            &mol,
            BasisName::B631gd,
            1e-10,
            0.0,
            false,
        )
    } else {
        eprintln!(
            "[setup] generating {} workload (geometry, Schwarz bounds, statistics)...",
            system.label()
        );
        let ctx = Ctx::paper(system, true);
        eprintln!(
            "[setup] {}: {} shells, {} pairs, {} surviving tasks, {:.2e} surviving quartets",
            system.label(),
            ctx.workload.n_shells,
            ctx.workload.total_pairs,
            ctx.workload.ij_tasks.len(),
            ctx.workload.surviving_quartets as f64,
        );
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_contexts_build_for_every_system() {
        for sys in PaperSystem::ALL {
            let ctx = context(sys, true);
            assert!(!ctx.workload.ij_tasks.is_empty());
        }
    }
}
