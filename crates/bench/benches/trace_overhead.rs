//! Bench: the cost of the `phi-trace` instrumentation on the hot path.
//!
//! Measures the engine-serial Fock build twice — outside any
//! [`TraceSession`] (the "armed but idle" configuration: one relaxed
//! atomic load per instrumentation point) and inside an active session
//! (events actually recorded) — and hard-asserts the traced/baseline
//! ratio against the PR's overhead budget of 2 %. Built without
//! `--features trace` the same binary measures the compiled-out
//! configuration, where both sides are the identical machine code and
//! the ratio is pure timing noise.
//!
//! Resolving a ≤2 % effect needs a drift-robust protocol, so this bench
//! does not reuse the sequential `Runner`: each round times the two
//! sides in *adjacent* windows (alternating which goes first, which
//! cancels any first/second bias) and the reported overhead is the
//! **median of the per-round ratios**. Adjacent windows share the
//! machine's drift state, so a per-round ratio is far less noisy than
//! a ratio of independently-taken minima, and the median discards the
//! rounds a noisy neighbour lands on. Full mode measures the C6 ring
//! in 6-31G: large enough to be a real build, small enough to repeat
//! many times. (Per-build trace cost is O(1) events, so a *smaller*
//! system is the conservative choice — fixed cost over less work.)
//! `PHI_BENCH_SMOKE=1` switches to water/6-31G with millisecond
//! windows, where the assert is correspondingly lenient — CI uses smoke
//! mode only to keep the bench executing, not for published numbers.
//!
//! `--json <path>` writes the overhead record plus the machine-readable
//! [`TraceSummary`] of a single traced build (this is how
//! `BENCH_pr4.json` is produced); `--chrome <path>` writes that build's
//! Chrome `trace_event` JSON (CI uploads it as an artifact when the
//! budget assert fails). Both files are written *before* the assert so
//! a failure leaves the evidence behind.

use hf::{DensitySet, FockAlgorithm, FockContext};
use phi_bench::microbench::{black_box, smoke_mode};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use phi_trace::TraceSession;
use std::time::Instant;

fn flag_path(flag: &str) -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

fn main() {
    let (label, mol, basis_name) = if smoke_mode() {
        ("water, 6-31G", small::water(), BasisName::B631g)
    } else {
        ("C6 ring, 6-31G", small::c_ring(6, 1.39), BasisName::B631g)
    };
    let basis = BasisSet::build(&mol, basis_name);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let tau = 1e-10;
    let ctx = FockContext::new(&basis, &pairs, &screening, tau);
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.05 });
    let dens = DensitySet::Restricted(&d);

    println!("# group: trace_overhead");
    println!("# system: {label}");
    println!("# trace feature compiled in: {}", phi_trace::enabled());

    let mut build = || {
        black_box(FockAlgorithm::Serial.builder().build(&ctx, &dens).g.trace());
    };
    let time_window = |iters: u64, f: &mut dyn FnMut()| -> f64 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        t0.elapsed().as_secs_f64()
    };

    // Calibrate the iteration count on the untraced side (warm-up rides
    // along), then run the paired rounds.
    let (window, rounds) = if smoke_mode() { (0.002, 5) } else { (0.25, 10) };
    let mut iters = 1u64;
    loop {
        let dt = time_window(iters, &mut build);
        if dt >= window {
            break;
        }
        iters = if dt > 1e-4 {
            ((iters as f64 * window / dt).ceil() as u64).max(iters + 1)
        } else {
            iters * 10
        };
    }
    let mut best_untraced = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let traced_first = round % 2 == 1;
        let mut round_traced = 0.0;
        let mut round_untraced = 0.0;
        for half in 0..2 {
            if (half == 0) == traced_first {
                let session = TraceSession::begin();
                round_traced = time_window(iters, &mut build);
                drop(session.finish());
            } else {
                round_untraced = time_window(iters, &mut build);
            }
        }
        best_traced = best_traced.min(round_traced);
        best_untraced = best_untraced.min(round_untraced);
        ratios.push(round_traced / round_untraced);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = (ratios[(rounds - 1) / 2] + ratios[rounds / 2]) / 2.0;
    let baseline = best_untraced * 1e9 / iters as f64;
    let traced = best_traced * 1e9 / iters as f64;
    println!("trace_overhead/serial_engine_untraced: {baseline:.1} ns/iter ({iters} iters)");
    println!("trace_overhead/serial_engine_traced: {traced:.1} ns/iter ({iters} iters)");
    println!(
        "# per-round traced/untraced ratios (sorted): {}",
        ratios.iter().map(|r| format!("{r:.4}")).collect::<Vec<_>>().join(" ")
    );

    // One clean single-build session for the exported artifacts.
    let session = TraceSession::begin();
    build();
    let report = session.finish();
    let summary = report.summary();

    println!("# traced/untraced serial Fock time (median of paired rounds): {ratio:.4}");

    if let Some(path) = flag_path("--chrome") {
        std::fs::write(&path, report.to_chrome_json()).expect("write chrome trace");
        println!("# wrote {}", path.display());
    }
    if let Some(path) = flag_path("--json") {
        let json = format!(
            "{{\n  \"bench\": \"trace_overhead\",\n  \"system\": \"{label}\",\n  \
             \"trace_feature\": {feat},\n  \"unit\": \"ns_per_fock_build\",\n  \
             \"untraced_serial\": {baseline:.1},\n  \"traced_serial\": {traced:.1},\n  \
             \"traced_over_untraced\": {ratio:.4},\n  \"budget\": 1.02,\n  \
             \"summary\": {summary}}}\n",
            feat = phi_trace::enabled(),
            summary = summary.to_json(),
        );
        std::fs::write(&path, json).expect("write json");
        println!("# wrote {}", path.display());
    }

    // The budget assert. Smoke mode times single builds in millisecond
    // windows, so it only guards against gross regressions (an
    // accidental per-quartet event would blow far past 1.5x).
    let budget = if smoke_mode() { 1.5 } else { 1.02 };
    assert!(
        ratio <= budget,
        "trace overhead {ratio:.4} exceeds the budget {budget} on the engine-serial Fock build"
    );
}
