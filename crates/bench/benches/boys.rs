//! Microbench: Boys function across its two evaluation regimes.

use phi_bench::microbench::{black_box, Runner};
use phi_integrals::boys::boys;

fn main() {
    let mut r = Runner::new("boys");
    for &t in &[0.1, 5.0, 25.0, 50.0] {
        let mut out = [0.0; 9];
        r.bench(&format!("F0..F8(T={t})"), || {
            boys(black_box(t), &mut out);
            black_box(out[8]);
        });
    }
}
