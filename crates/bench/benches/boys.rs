//! Microbench: Boys function across its two evaluation regimes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phi_integrals::boys::boys;

fn bench_boys(c: &mut Criterion) {
    let mut g = c.benchmark_group("boys");
    g.sample_size(30);
    for &t in &[0.1, 5.0, 25.0, 50.0] {
        g.bench_function(format!("F0..F8(T={t})"), |b| {
            let mut out = [0.0; 9];
            b.iter(|| {
                boys(black_box(t), &mut out);
                black_box(out[8])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_boys);
criterion_main!(benches);
