//! Microbench: Schwarz bound computation and workload statistics (the
//! sorted-count machinery that makes the 5 nm system tractable).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::screening::WorkloadStats;
use phi_integrals::Screening;

fn bench_screening(c: &mut Criterion) {
    let mol = small::h_chain(40, 2.5);
    let basis = BasisSet::build(&mol, BasisName::Sto3g);

    let mut g = c.benchmark_group("screening");
    g.sample_size(10);
    g.bench_function("schwarz_bounds_h40", |b| {
        b.iter(|| black_box(Screening::compute(black_box(&basis)).q_max()))
    });
    let s = Screening::compute(&basis);
    g.bench_function("workload_stats_h40", |b| {
        b.iter(|| {
            let w = WorkloadStats::compute(black_box(&basis), &s, 1e-10);
            black_box(w.surviving_quartets())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_screening);
criterion_main!(benches);
