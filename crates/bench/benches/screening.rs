//! Microbench: Schwarz bound computation and workload statistics (the
//! sorted-count machinery that makes the 5 nm system tractable).

use phi_bench::microbench::{black_box, Runner};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::screening::WorkloadStats;
use phi_integrals::Screening;

fn main() {
    let mol = small::h_chain(40, 2.5);
    let basis = BasisSet::build(&mol, BasisName::Sto3g);

    let mut r = Runner::new("screening");
    r.bench("schwarz_bounds_h40", || {
        black_box(Screening::compute(black_box(&basis)).q_max());
    });
    let s = Screening::compute(&basis);
    r.bench("workload_stats_h40", || {
        let w = WorkloadStats::compute(black_box(&basis), &s, 1e-10);
        black_box(w.surviving_quartets());
    });
}
