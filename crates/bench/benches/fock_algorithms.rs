//! Bench: one two-electron Fock build with each of the paper's algorithms
//! on a real molecule. (On a single host core the parallel variants mostly
//! measure orchestration overhead over the serial baseline; the cluster
//! behaviour comes from phi-knlsim.)

use hf::fock::{mpi_only, private_fock, serial, shared_fock};
use phi_bench::microbench::{black_box, Runner};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;

fn main() {
    let mol = small::water();
    let basis = BasisSet::build(&mol, BasisName::B631g);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.05 });

    let mut r = Runner::new("fock_build_water_631g");
    r.bench("serial", || {
        black_box(serial::build_g_serial(&basis, &pairs, &screening, 1e-10, &d).g.trace());
    });
    r.bench("mpi_only_2ranks", || {
        black_box(mpi_only::build_g_mpi_only(&basis, &pairs, &screening, 1e-10, &d, 2).g.trace());
    });
    r.bench("private_fock_1x2", || {
        black_box(
            private_fock::build_g_private_fock(&basis, &pairs, &screening, 1e-10, &d, 1, 2)
                .g
                .trace(),
        );
    });
    r.bench("shared_fock_1x2", || {
        black_box(
            shared_fock::build_g_shared_fock(&basis, &pairs, &screening, 1e-10, &d, 1, 2).g.trace(),
        );
    });
}
