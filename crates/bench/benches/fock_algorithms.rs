//! Bench: one two-electron Fock build with each of the paper's algorithms,
//! driven two ways — through the legacy free functions and through the
//! unified `FockBuilder` engine — to show the engine layer costs nothing
//! on the RHF hot path. (On a single host core the parallel variants
//! mostly measure orchestration overhead over the serial baseline; the
//! cluster behaviour comes from phi-knlsim.)
//!
//! Also asserts (hard, not timed) that every DLB-driven builder reports a
//! non-zero `dlb_calls` in its stats — the uniform counter contract.
//!
//! Full mode benches the C6 ring in 6-31G(d) (the calibration system);
//! `PHI_BENCH_SMOKE=1` switches to water/6-31G so CI finishes in seconds.
//! Pass `--json <path>` to write the legacy-vs-engine comparison, e.g.
//! `BENCH_pr2.json`.

use hf::fock::serial;
use hf::{DensitySet, FockAlgorithm, FockContext};
use phi_bench::microbench::{black_box, smoke_mode, Runner};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;

fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(std::path::PathBuf::from(
                args.next().unwrap_or_else(|| "bench_fock.json".into()),
            ));
        }
    }
    None
}

fn main() {
    let (label, mol, basis_name) = if smoke_mode() {
        ("water, 6-31G", small::water(), BasisName::B631g)
    } else {
        ("C6 ring, 6-31G(d)", small::c_ring(6, 1.39), BasisName::B631gd)
    };
    let basis = BasisSet::build(&mol, basis_name);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let tau = 1e-10;
    let ctx = FockContext::new(&basis, &pairs, &screening, tau);
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.05 });
    let dens = DensitySet::Restricted(&d);

    // The uniform stats contract: every DLB-driven builder must report the
    // world-global DLB counter reads (serial reports zero).
    for alg in [
        FockAlgorithm::Serial,
        FockAlgorithm::MpiOnly { n_ranks: 2 },
        FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 2 },
    ] {
        let gb = alg.builder().build(&ctx, &dens);
        match alg {
            FockAlgorithm::Serial => {
                assert_eq!(gb.stats.dlb_calls, 0, "serial build must not touch the DLB counter")
            }
            _ => assert!(
                gb.stats.dlb_calls > 0,
                "{} reported zero dlb_calls — the uniform counter is broken",
                alg.label()
            ),
        }
    }

    let mut r = Runner::new("fock_build");
    println!("# system: {label}");

    // Legacy direct path vs the engine path for the serial builder — the
    // per-iteration Fock time these two report must agree within noise
    // (the engine dispatches Restricted sets to the same monomorphic
    // digestion loop).
    let legacy = r
        .bench("serial_legacy_fn", || {
            black_box(serial::build_g_serial(&basis, &pairs, &screening, tau, &d).g.trace());
        })
        .ns_per_iter;
    let engine = r
        .bench("serial_engine", || {
            black_box(FockAlgorithm::Serial.builder().build(&ctx, &dens).g.trace());
        })
        .ns_per_iter;

    r.bench("mpi_only_2ranks", || {
        black_box(FockAlgorithm::MpiOnly { n_ranks: 2 }.builder().build(&ctx, &dens).g.trace());
    });
    r.bench("private_fock_1x2", || {
        black_box(
            FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 2 }
                .builder()
                .build(&ctx, &dens)
                .g
                .trace(),
        );
    });
    r.bench("shared_fock_1x2", || {
        black_box(
            FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 2 }
                .builder()
                .build(&ctx, &dens)
                .g
                .trace(),
        );
    });

    let ratio = engine / legacy;
    println!("# engine/legacy serial Fock time: {ratio:.4} (1.0 = no abstraction cost)");

    if let Some(path) = json_path() {
        let json = format!(
            "{{\n  \"bench\": \"fock_build_engine_vs_legacy\",\n  \"system\": \"{label}\",\n  \
             \"unit\": \"ns_per_fock_build\",\n  \"legacy_serial\": {legacy:.1},\n  \
             \"engine_serial\": {engine:.1},\n  \"engine_over_legacy\": {ratio:.4}\n}}\n"
        );
        std::fs::write(&path, json).expect("write json");
        println!("# wrote {}", path.display());
    }
}
