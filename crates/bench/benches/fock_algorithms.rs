//! Bench: one two-electron Fock build with each of the paper's algorithms
//! on a real molecule. (On a single host core the parallel variants mostly
//! measure orchestration overhead over the serial baseline; the cluster
//! behaviour comes from phi-knlsim.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hf::fock::{mpi_only, private_fock, serial, shared_fock};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::Screening;
use phi_linalg::Mat;

fn bench_fock(c: &mut Criterion) {
    let mol = small::water();
    let basis = BasisSet::build(&mol, BasisName::B631g);
    let screening = Screening::compute(&basis);
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.05 });

    let mut g = c.benchmark_group("fock_build_water_631g");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| black_box(serial::build_g_serial(&basis, &screening, 1e-10, &d).g.trace()))
    });
    g.bench_function("mpi_only_2ranks", |b| {
        b.iter(|| {
            black_box(mpi_only::build_g_mpi_only(&basis, &screening, 1e-10, &d, 2).g.trace())
        })
    });
    g.bench_function("private_fock_1x2", |b| {
        b.iter(|| {
            black_box(
                private_fock::build_g_private_fock(&basis, &screening, 1e-10, &d, 1, 2)
                    .g
                    .trace(),
            )
        })
    });
    g.bench_function("shared_fock_1x2", |b| {
        b.iter(|| {
            black_box(
                shared_fock::build_g_shared_fock(&basis, &screening, 1e-10, &d, 1, 2).g.trace(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fock);
criterion_main!(benches);
