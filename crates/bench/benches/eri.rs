//! Microbench: contracted ERI shell quartets by angular/contraction class.
//!
//! These per-class costs are exactly what `phi-knlsim::calibrate` feeds the
//! cluster simulator, so this bench doubles as a visibility check on the
//! calibration inputs.
//!
//! Each class is measured twice: through the compat wrapper that rebuilds
//! pair data (E-tables, product centers, prefactors) on every call, and
//! through the persistent [`ShellPairs`] dataset, which is what every Fock
//! build uses in production. Pass `--json <path>` to also write the results
//! (with per-class speedups) to a file, e.g. `BENCH_pr1.json`.

use phi_bench::microbench::{black_box, Runner};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::{EriEngine, ShellPairs};

fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(std::path::PathBuf::from(
                args.next().unwrap_or_else(|| "bench_eri.json".into()),
            ));
        }
    }
    None
}

fn main() {
    let basis = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
    let pairs = ShellPairs::build(&basis);
    // Carbon 6-31G(d) shell order per atom: S6, L3, L1, D1.
    // Indices (shell_a, shell_b) picked on different atoms so E-tables are
    // nontrivial; ShellPairs stores i >= j so order bra/ket accordingly.
    let cases: [(&str, usize, usize, usize, usize); 4] = [
        ("(S6 S6|S6 S6) heaviest contraction", 4, 0, 4, 0),
        ("(L3 L3|L3 L3) sp shells", 5, 1, 5, 1),
        ("(D1 D1|D1 D1) highest angular momentum", 7, 3, 7, 3),
        ("(S6 L3|L1 D1) mixed", 4, 1, 7, 2),
    ];

    let mut r = Runner::new("eri_quartet");
    let mut rows = Vec::new();
    for (name, a, b, c, d) in cases {
        let (sa, sb, sc, sd) =
            (&basis.shells[a], &basis.shells[b], &basis.shells[c], &basis.shells[d]);
        let len = sa.n_functions() * sb.n_functions() * sc.n_functions() * sd.n_functions();
        let mut buf = vec![0.0; len];
        let mut engine = EriEngine::new();

        let uncached = r
            .bench(&format!("{name} / rebuild-pairs"), || {
                engine.shell_quartet(black_box(sa), sb, sc, sd, &mut buf);
                black_box(buf[0]);
            })
            .ns_per_iter;

        let bra = pairs.pair(a, b);
        let ket = pairs.pair(c, d);
        let cached = r
            .bench(&format!("{name} / cached-pairs"), || {
                engine.shell_quartet_pairs(black_box(bra), ket, &mut buf);
                black_box(buf[0]);
            })
            .ns_per_iter;

        println!("  -> speedup {:.2}x", uncached / cached);
        rows.push((name, uncached, cached));
    }

    if let Some(path) = json_path() {
        let mut out = String::from("{\n  \"bench\": \"eri_quartet_pair_cache_ablation\",\n");
        out.push_str("  \"system\": \"C6 ring, 6-31G(d)\",\n  \"unit\": \"ns_per_quartet\",\n");
        out.push_str("  \"cases\": [\n");
        for (k, (name, unc, cac)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"rebuild_pairs\": {:.1}, \"cached_pairs\": {:.1}, \"speedup\": {:.2}}}{}\n",
                name,
                unc,
                cac,
                unc / cac,
                if k + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("[json] wrote {}", path.display());
    }
}
