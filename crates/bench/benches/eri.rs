//! Microbench: contracted ERI shell quartets by angular/contraction class.
//!
//! These per-class costs are exactly what `phi-knlsim::calibrate` feeds the
//! cluster simulator, so this bench doubles as a visibility check on the
//! calibration inputs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::EriEngine;

fn bench_eri(c: &mut Criterion) {
    let basis = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
    // Carbon 6-31G(d) shell order per atom: S6, L3, L1, D1.
    let s6 = &basis.shells[0];
    let l3 = &basis.shells[1];
    let d1 = &basis.shells[3];
    let s6b = &basis.shells[4];
    let l3b = &basis.shells[5];
    let d1b = &basis.shells[7];

    let mut g = c.benchmark_group("eri_quartet");
    g.sample_size(40);
    let cases = [
        ("(S6 S6|S6 S6) heaviest contraction", s6, s6b, s6, s6b),
        ("(L3 L3|L3 L3) sp shells", l3, l3b, l3, l3b),
        ("(D1 D1|D1 D1) highest angular momentum", d1, d1b, d1, d1b),
        ("(S6 L3|L1 D1) mixed", s6, l3, &basis.shells[2], d1b),
    ];
    for (name, a, b, cc, d) in cases {
        let len = a.n_functions() * b.n_functions() * cc.n_functions() * d.n_functions();
        let mut buf = vec![0.0; len];
        let mut engine = EriEngine::new();
        g.bench_function(name, |bencher| {
            bencher.iter(|| {
                engine.shell_quartet(black_box(a), b, cc, d, &mut buf);
                black_box(buf[0])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eri);
criterion_main!(benches);
