//! Microbench: class-specialized ERI kernels vs the generic McMurchie-
//! Davidson recursion, per angular/contraction class on the paper's
//! C6/6-31G(d)-style workload.
//!
//! Both sides run the production path (persistent [`ShellPairs`] data);
//! the only variable is `EriEngine::use_kernels`. Every case first asserts
//! numerical parity (<= 1e-14 per integral), then measures ns/quartet both
//! ways. In full mode the per-class speedups are enforced as hard floors
//! (2x on the d and SP classes the workload is dominated by, 1x meaning no
//! regression elsewhere) so a kernel regression fails the bench, not just
//! a dashboard. Smoke mode (`PHI_BENCH_SMOKE=1`) keeps the parity asserts
//! and skips the floors (timings are meaningless in tiny windows).
//!
//! Pass `--json <path>` to write the ablation table, e.g. `BENCH_pr9.json`.

use phi_bench::microbench::{black_box, smoke_mode, Runner};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_integrals::{class_index, EriEngine, ShellPairs, CLASS_LABELS};

fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(std::path::PathBuf::from(
                args.next().unwrap_or_else(|| "bench_eri.json".into()),
            ));
        }
    }
    None
}

struct Row {
    name: &'static str,
    class: &'static str,
    generic_ns: f64,
    kernel_ns: f64,
    floor: f64,
}

fn main() {
    let basis = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
    let pairs = ShellPairs::build(&basis);
    // Carbon 6-31G(d) shell order per atom: S6, L3, L1, D1. Indices pick
    // shells on different atoms so E-tables are nontrivial; ShellPairs
    // stores i >= j so bra/ket are ordered accordingly. The floor column is
    // the enforced speedup bound: >= 2x on the contracted d/SP classes the
    // workload is dominated by, >= 1x (no regression) on the light classes.
    // Pure (dd|dd) from single-primitive D1 shells is contraction-bound —
    // one primitive quartet leaves nothing for the batched phases to
    // amortize, so its win comes from the precomputed sparse E tables and
    // skipped R-cube zero-fill alone (measured ~1.5x); its floor is 1.3x.
    let cases: [(&str, usize, usize, usize, usize, f64); 5] = [
        ("(S6 S6|S6 S6) heaviest contraction", 4, 0, 4, 0, 1.0),
        ("(L3 L3|L3 L3) sp shells", 5, 1, 5, 1, 2.0),
        ("(D1 D1|D1 D1) highest angular momentum", 7, 3, 7, 3, 1.3),
        ("(D1 D1|L3 L3) d x sp", 7, 3, 5, 1, 2.0),
        ("(S6 L3|L1 D1) mixed", 4, 1, 7, 2, 1.0),
    ];

    let mut r = Runner::new("eri_kernel_ablation");
    let mut rows = Vec::new();
    for (name, a, b, c, d, floor) in cases {
        let bra = pairs.pair(a, b);
        let ket = pairs.pair(c, d);
        let len = bra.n_fn() * ket.n_fn();
        let class = CLASS_LABELS[class_index(bra.l_sum, ket.l_sum)];
        let mut kernel = EriEngine::new();
        let mut generic = EriEngine::generic_only();

        // Parity gate before timing: the ablation is only meaningful if
        // both sides compute the same integrals.
        let mut vk = vec![0.0; len];
        let mut vg = vec![0.0; len];
        kernel.shell_quartet_pairs(bra, ket, &mut vk);
        generic.shell_quartet_pairs(bra, ket, &mut vg);
        for (k, (x, y)) in vk.iter().zip(&vg).enumerate() {
            assert!(
                (x - y).abs() <= 1e-14,
                "{name} [{class}] element {k}: kernel {x:.17e} vs generic {y:.17e}"
            );
        }

        let mut buf = vec![0.0; len];
        let generic_ns = r
            .bench(&format!("{name} / generic"), || {
                generic.shell_quartet_pairs(black_box(bra), ket, &mut buf);
                black_box(buf[0]);
            })
            .ns_per_iter;
        let kernel_ns = r
            .bench(&format!("{name} / kernel"), || {
                kernel.shell_quartet_pairs(black_box(bra), ket, &mut buf);
                black_box(buf[0]);
            })
            .ns_per_iter;

        println!("  -> class {class}: speedup {:.2}x (floor {floor:.1}x)", generic_ns / kernel_ns);
        rows.push(Row { name, class, generic_ns, kernel_ns, floor });
    }

    if let Some(path) = json_path() {
        let mut out = String::from("{\n  \"bench\": \"eri_kernel_class_ablation\",\n");
        out.push_str("  \"system\": \"C6 ring, 6-31G(d)\",\n  \"unit\": \"ns_per_quartet\",\n");
        out.push_str("  \"cases\": [\n");
        for (k, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"case\": \"{}\", \"class\": \"{}\", \"generic\": {:.1}, \"kernel\": {:.1}, \"speedup\": {:.2}, \"floor\": {:.1}}}{}\n",
                row.name,
                row.class,
                row.generic_ns,
                row.kernel_ns,
                row.generic_ns / row.kernel_ns,
                row.floor,
                if k + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("[json] wrote {}", path.display());
    }

    if smoke_mode() {
        eprintln!("[smoke] parity checked; speedup floors skipped");
        return;
    }
    let mut failed = false;
    for row in &rows {
        let speedup = row.generic_ns / row.kernel_ns;
        if speedup < row.floor {
            eprintln!(
                "FLOOR MISS: {} [{}] {:.2}x < required {:.1}x",
                row.name, row.class, speedup, row.floor
            );
            failed = true;
        }
    }
    assert!(!failed, "per-class speedup floors not met");
}
