//! Microbench: symmetric eigensolver (the Fock diagonalization step).

use phi_bench::microbench::{black_box, Runner};
use phi_linalg::{eigh, Mat};

fn random_symmetric(n: usize) -> Mat {
    let mut state = 12345u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut a = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let x = next();
            a[(i, j)] = x;
            a[(j, i)] = x;
        }
    }
    a
}

fn main() {
    let mut r = Runner::new("eigh");
    for n in [50usize, 100, 200] {
        let a = random_symmetric(n);
        r.bench(&format!("eigh_{n}"), || {
            black_box(eigh(black_box(&a)).values[0]);
        });
    }
}
