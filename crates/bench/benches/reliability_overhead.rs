//! Bench: the fault-free cost of the reliable-delivery layer.
//!
//! Measures the MPI-only Fock build twice — under `RetryPolicy::none()`
//! (raw fire-and-forget sends, the pre-reliability wire protocol) and
//! under `RetryPolicy::default()` (checksummed, acked, deduplicated
//! sequenced delivery on the reduction tree and barriers) — and
//! hard-asserts the reliable/raw ratio against the PR's overhead budget
//! of 2 %. With no faults injected, the entire difference is the
//! protocol tax: checksum computation, ack round-trips and the pumping
//! barrier.
//!
//! Resolving a ≤2 % effect uses the same drift-robust protocol as
//! `trace_overhead`: each round times the two sides in *adjacent*
//! windows (alternating which goes first) and the reported overhead is
//! the **median of the per-round ratios**. Full mode measures the C6
//! ring in 6-31G at four ranks; `PHI_BENCH_SMOKE=1` switches to
//! water/6-31G with millisecond windows and a correspondingly lenient
//! assert — CI uses smoke mode to keep the bench executing, not for
//! published numbers.
//!
//! `--json <path>` writes the overhead record (this is how
//! `BENCH_pr8.json` is produced), before the assert so a failure leaves
//! the evidence behind.

use hf::{DensitySet, FockAlgorithm, FockContext};
use phi_bench::microbench::{black_box, smoke_mode};
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;
use phi_dmpi::RetryPolicy;
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

fn flag_path(flag: &str) -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

fn main() {
    let (label, mol, basis_name) = if smoke_mode() {
        ("water, 6-31G", small::water(), BasisName::B631g)
    } else {
        ("C6 ring, 6-31G", small::c_ring(6, 1.39), BasisName::B631g)
    };
    let basis = BasisSet::build(&mol, basis_name);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let tau = 1e-10;
    let ctx = FockContext::new(&basis, &pairs, &screening, tau);
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.05 });
    let dens = DensitySet::Restricted(&d);
    let alg = FockAlgorithm::MpiOnly { n_ranks: 4 };

    println!("# group: reliability_overhead");
    println!("# system: {label}, mpi:4");

    let build_with = |retry: RetryPolicy| {
        black_box(alg.builder_with_comm(None, retry).build(&ctx, &dens).g.trace());
    };
    let mut raw = || build_with(RetryPolicy::none());
    let mut reliable = || build_with(RetryPolicy::default());
    let time_window = |iters: u64, f: &mut dyn FnMut()| -> f64 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        t0.elapsed().as_secs_f64()
    };

    // Calibrate the iteration count on the raw side (warm-up rides
    // along), then run the paired rounds.
    let (window, rounds) = if smoke_mode() { (0.002, 5) } else { (0.25, 10) };
    let mut iters = 1u64;
    loop {
        let dt = time_window(iters, &mut raw);
        if dt >= window {
            break;
        }
        iters = if dt > 1e-4 {
            ((iters as f64 * window / dt).ceil() as u64).max(iters + 1)
        } else {
            iters * 10
        };
    }
    let mut best_raw = f64::INFINITY;
    let mut best_reliable = f64::INFINITY;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let reliable_first = round % 2 == 1;
        let mut round_reliable = 0.0;
        let mut round_raw = 0.0;
        for half in 0..2 {
            if (half == 0) == reliable_first {
                round_reliable = time_window(iters, &mut reliable);
            } else {
                round_raw = time_window(iters, &mut raw);
            }
        }
        best_reliable = best_reliable.min(round_reliable);
        best_raw = best_raw.min(round_raw);
        ratios.push(round_reliable / round_raw);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = (ratios[(rounds - 1) / 2] + ratios[rounds / 2]) / 2.0;
    let baseline = best_raw * 1e9 / iters as f64;
    let with_acks = best_reliable * 1e9 / iters as f64;
    println!("reliability_overhead/mpi4_raw: {baseline:.1} ns/iter ({iters} iters)");
    println!("reliability_overhead/mpi4_reliable: {with_acks:.1} ns/iter ({iters} iters)");
    println!(
        "# per-round reliable/raw ratios (sorted): {}",
        ratios.iter().map(|r| format!("{r:.4}")).collect::<Vec<_>>().join(" ")
    );
    println!("# reliable/raw MPI-only Fock time (median of paired rounds): {ratio:.4}");

    if let Some(path) = flag_path("--json") {
        let json = format!(
            "{{\n  \"bench\": \"reliability_overhead\",\n  \"system\": \"{label}, mpi:4\",\n  \
             \"unit\": \"ns_per_fock_build\",\n  \
             \"raw_mpi4\": {baseline:.1},\n  \"reliable_mpi4\": {with_acks:.1},\n  \
             \"reliable_over_raw\": {ratio:.4},\n  \"budget\": 1.02\n}}\n"
        );
        std::fs::write(&path, json).expect("write json");
        println!("# wrote {}", path.display());
    }

    // The budget assert. Smoke mode times single builds in millisecond
    // windows, so it only guards against gross regressions (a hot-path
    // sleep or a per-message allocation storm would blow far past 1.5x).
    let budget = if smoke_mode() { 1.5 } else { 1.02 };
    assert!(
        ratio <= budget,
        "reliable-delivery overhead {ratio:.4} exceeds the budget {budget} on the \
         fault-free MPI-only Fock build"
    );
}
