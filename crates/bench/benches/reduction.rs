//! Ablation bench for the paper's Figure 1 data structure: padded-column
//! buffers with chunked parallel tree reduction vs a naive serial flush.

use phi_bench::microbench::{black_box, Runner};
use phi_omp::{PaddedColumns, SharedAccumulator, Team};

fn main() {
    let len = 64 * 1024;
    let cols = 4;

    let mut r = Runner::new("figure1_reduction");

    {
        let p = PaddedColumns::new(len, cols);
        let dst = SharedAccumulator::new(len);
        let team = Team::new(cols);
        r.bench("parallel_chunked_tree_flush", || {
            team.parallel(|ctx| {
                let col = p.col_mut(ctx.thread_num());
                for v in col.iter_mut() {
                    *v = 1.0;
                }
                p.flush_into(ctx, &dst, 0);
            });
            black_box(dst.load(0));
        });
    }

    {
        let p = PaddedColumns::new(len, cols);
        let mut dst = vec![0.0; len];
        r.bench("serial_flush_baseline", || {
            for col in 0..cols {
                for v in p.col_mut(col).iter_mut() {
                    *v = 1.0;
                }
            }
            p.flush_serial(&mut dst, 0);
            black_box(dst[0]);
        });
    }
}
