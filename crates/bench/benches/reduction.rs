//! Ablation bench for the paper's Figure 1 data structure: padded-column
//! buffers with chunked parallel tree reduction vs a naive serial flush.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phi_omp::{PaddedColumns, SharedAccumulator, Team};

fn bench_reduction(c: &mut Criterion) {
    let len = 64 * 1024;
    let cols = 4;

    let mut g = c.benchmark_group("figure1_reduction");
    g.sample_size(20);

    g.bench_function("parallel_chunked_tree_flush", |b| {
        let p = PaddedColumns::new(len, cols);
        let dst = SharedAccumulator::new(len);
        let team = Team::new(cols);
        b.iter(|| {
            team.parallel(|ctx| {
                let col = p.col_mut(ctx.thread_num());
                for v in col.iter_mut() {
                    *v = 1.0;
                }
                p.flush_into(ctx, &dst, 0);
            });
            black_box(dst.load(0))
        })
    });

    g.bench_function("serial_flush_baseline", |b| {
        let p = PaddedColumns::new(len, cols);
        let mut dst = vec![0.0; len];
        b.iter(|| {
            for col in 0..cols {
                for v in p.col_mut(col).iter_mut() {
                    *v = 1.0;
                }
            }
            p.flush_serial(&mut dst, 0);
            black_box(dst[0])
        })
    });

    g.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
