//! Bench: full direct SCF vs incremental (ΔD) SCF, end to end.
//!
//! Runs the RHF driver twice on the same system — plain direct builds vs
//! `incremental` mode (ΔD builds under density-weighted screening, full
//! rebuild every 8 iterations) — and reports the per-iteration
//! surviving-quartet and wall-time trajectories. The interesting number is
//! the ratio between the first full build's quartet count and the final
//! incremental iteration's: as SCF converges, ‖ΔD‖ collapses and the
//! weighted test `Q_ij Q_kl max|ΔD|` prunes almost everything.
//!
//! Hard asserts (not timed):
//! - the incremental run converges to the full run's energy within the SCF
//!   convergence threshold;
//! - no incremental iteration ever computes more quartets than the first
//!   full build;
//! - in full mode (C6 ring, 6-31G(d) — the calibration system), the final
//!   incremental iteration computes at least 3x fewer quartets than the
//!   first full build. Smoke mode (water/6-31G, `PHI_BENCH_SMOKE=1`) skips
//!   the 3x floor: water's surviving Schwarz products are all so large
//!   that τ-level ΔD weighting prunes nothing — the run must merely not
//!   get slower per quartet.
//!
//! Pass `--json <path>` to write the trajectories, e.g. `BENCH_pr5.json`.

use hf::{run_scf, ScfConfig, ScfResult};
use phi_bench::microbench::smoke_mode;
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::small;

fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(std::path::PathBuf::from(
                args.next().unwrap_or_else(|| "bench_incremental.json".into()),
            ));
        }
    }
    None
}

fn quartets(r: &ScfResult) -> Vec<u64> {
    r.fock_stats.iter().map(|s| s.quartets_computed).collect()
}

fn ns_per_build(r: &ScfResult) -> Vec<u64> {
    r.fock_stats.iter().map(|s| (s.seconds * 1e9) as u64).collect()
}

fn json_u64s(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let (label, mol, basis_name) = if smoke_mode() {
        ("water, 6-31G", small::water(), BasisName::B631g)
    } else {
        ("C6 ring, 6-31G(d)", small::c_ring(6, 1.39), BasisName::B631gd)
    };
    let basis = BasisSet::build(&mol, basis_name);
    // Tight density convergence gives the incremental tail room to shrink:
    // the weighted test prunes `Q_ij Q_kl max|ΔD| < tau`, so the pruning
    // power is set by how small ‖ΔD‖ gets before the run stops.
    let base = ScfConfig { convergence: 1e-10, ..Default::default() };
    // The two runs take different build paths, so their converged energies
    // agree to the suite's standard convergence threshold, not to the
    // tighter density threshold above.
    let energy_tol = ScfConfig::default().convergence;

    println!("# system: {label}");
    let full = run_scf(&mol, &basis, &base);
    assert!(full.converged, "full direct SCF did not converge");
    let inc = run_scf(
        &mol,
        &basis,
        &ScfConfig { incremental: true, full_rebuild_every: 8, ..base.clone() },
    );
    assert!(inc.converged, "incremental SCF did not converge");

    let de = (inc.energy - full.energy).abs();
    assert!(
        de < energy_tol,
        "incremental energy {} vs full {} — off by {de:.3e}, \
         beyond the convergence threshold {energy_tol:.1e}",
        inc.energy,
        full.energy
    );

    let q_inc = quartets(&inc);
    let first_full = q_inc[0];
    assert!(!inc.fock_stats[0].incremental, "first build must be full");
    assert!(
        q_inc.iter().all(|&q| q <= first_full),
        "an incremental-mode iteration computed more quartets than the first full build"
    );
    let last_inc = inc
        .fock_stats
        .iter()
        .rposition(|s| s.incremental)
        .expect("no incremental iteration in the whole run");
    let reduction = first_full as f64 / q_inc[last_inc].max(1) as f64;

    println!("# full run:        {} iterations, E = {:.8}", full.iterations, full.energy);
    println!("# incremental run: {} iterations, E = {:.8}", inc.iterations, inc.energy);
    println!("# quartets, full direct:    {:?}", quartets(&full));
    println!("# quartets, incremental:    {q_inc:?}");
    println!(
        "# final incremental iteration (#{}) computes {reduction:.1}x fewer quartets \
         than the first full build ({} vs {first_full})",
        last_inc + 1,
        q_inc[last_inc]
    );
    if !smoke_mode() {
        assert!(
            reduction >= 3.0,
            "incremental screening only reached {reduction:.2}x on {label}; the \
             calibration floor is 3x"
        );
    }

    if let Some(path) = json_path() {
        let flags: Vec<String> = inc.fock_stats.iter().map(|s| s.incremental.to_string()).collect();
        let json = format!(
            "{{\n  \"bench\": \"incremental_scf\",\n  \"system\": \"{label}\",\n  \
             \"energy_full\": {:.10},\n  \"energy_incremental\": {:.10},\n  \
             \"energy_abs_diff\": {de:.3e},\n  \
             \"iterations_full\": {},\n  \"iterations_incremental\": {},\n  \
             \"quartets_full\": {},\n  \"quartets_incremental\": {},\n  \
             \"incremental_flags\": [{}],\n  \
             \"ns_per_build_full\": {},\n  \"ns_per_build_incremental\": {},\n  \
             \"first_full_quartets\": {first_full},\n  \
             \"final_incremental_quartets\": {},\n  \
             \"quartet_reduction\": {reduction:.2}\n}}\n",
            full.energy,
            inc.energy,
            full.iterations,
            inc.iterations,
            json_u64s(&quartets(&full)),
            json_u64s(&q_inc),
            flags.join(", "),
            json_u64s(&ns_per_build(&full)),
            json_u64s(&ns_per_build(&inc)),
            q_inc[last_inc],
        );
        std::fs::write(&path, json).expect("write json");
        println!("# wrote {}", path.display());
    }
}
