//! Bench: the memory wall — replicated vs sharded per-rank footprint.
//!
//! Runs the RHF driver on a graphene flake three ways: a serial reference,
//! the replicated MPI-only build, and the sharded build (tri-packed
//! density/Fock window stripes, O(N) rank-local caches). A per-rank byte
//! budget is fixed *a priori* from the [`MemoryModel`] — the midpoint of
//! the eq. (3a) replicated estimate and the sharded-stripe estimate — and
//! the live tracker must then show the wall: every replicated rank's peak
//! exceeds the budget, every sharded rank's peak fits under it.
//!
//! Hard asserts (not timed):
//! - all runs converge, and both parallel RHF energies — plus a sharded
//!   UHF run against its serial UHF reference (on water/6-31G(d,p); the
//!   DIIS-free UHF driver needs a system whose plain Roothaan iteration
//!   settles) — match within 1e-10;
//! - replicated per-rank peak (live tracker) > budget > sharded per-rank
//!   peak, and sharded < replicated outright;
//! - the tracker peaks bracket their own model estimates' ordering (the
//!   model is a prediction; the tracker is the measurement).
//!
//! Pass `--json <path>` to write the numbers, e.g. `BENCH_pr7.json`.

use hf::{run_scf, run_uhf, FockAlgorithm, MemoryModel, ScfConfig, ScfResult, UhfConfig};
use phi_bench::microbench::smoke_mode;
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::graphene;
use phi_dmpi::DdiMode;
use phi_integrals::ShellPairs;

const RANKS: usize = 4;

fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(std::path::PathBuf::from(
                args.next().unwrap_or_else(|| "bench_memory_wall.json".into()),
            ));
        }
    }
    None
}

fn rank_peak(r: &ScfResult) -> usize {
    r.fock_stats.iter().map(|s| s.max_rank_peak()).max().unwrap_or(0)
}

fn main() {
    let (label, mol) = if smoke_mode() {
        ("graphene flake, 8 C, STO-3G", graphene::graphene_flake(8))
    } else {
        ("graphene flake, 16 C, STO-3G", graphene::graphene_flake(16))
    };
    let basis = BasisSet::build(&mol, BasisName::Sto3g);
    let n = basis.n_basis();
    let pair_bytes = ShellPairs::build(&basis).bytes();

    // The a-priori budget: halfway between what eq. (3a) says a replicated
    // rank needs and what the sharded stripes + caches need. A budget the
    // *model* places between the two footprints must separate the *live
    // tracker* measurements the same way, or the model is lying.
    let model = MemoryModel::hybrid(n, 1, 1).with_shell_pairs(pair_bytes);
    let est_replicated = model.bytes_mpi_only();
    let est_sharded = model.bytes_sharded(RANKS);
    assert!(
        est_sharded < est_replicated,
        "model: sharded {est_sharded:.0} B should undercut replicated {est_replicated:.0} B"
    );
    let budget = ((est_replicated + est_sharded) / 2.0) as usize;

    println!("# system: {label} (N = {n}, {RANKS} ranks)");
    println!("# model per-rank: replicated {est_replicated:.0} B, sharded {est_sharded:.0} B");
    println!("# a-priori budget: {budget} B per rank");

    let serial = run_scf(&mol, &basis, &ScfConfig::default());
    assert!(serial.converged, "serial reference did not converge");

    let replicated = run_scf(
        &mol,
        &basis,
        &ScfConfig { algorithm: FockAlgorithm::MpiOnly { n_ranks: RANKS }, ..Default::default() },
    );
    assert!(replicated.converged, "replicated SCF did not converge");

    let sharded = run_scf(
        &mol,
        &basis,
        &ScfConfig {
            algorithm: FockAlgorithm::Sharded { n_ranks: RANKS, mode: DdiMode::Mpi3OneSided },
            ..Default::default()
        },
    );
    assert!(sharded.converged, "sharded SCF did not converge");

    let de_rep = (replicated.energy - serial.energy).abs();
    let de_sh = (sharded.energy - serial.energy).abs();
    assert!(de_rep <= 1e-10, "replicated energy off serial by {de_rep:.3e}");
    assert!(de_sh <= 1e-10, "sharded energy off serial by {de_sh:.3e}");

    let rep_peak = rank_peak(&replicated);
    let sh_peak = rank_peak(&sharded);
    println!("# tracker per-rank peak: replicated {rep_peak} B, sharded {sh_peak} B");
    assert!(
        rep_peak > budget,
        "replicated rank peak {rep_peak} B should bust the {budget} B budget"
    );
    assert!(sh_peak < budget, "sharded rank peak {sh_peak} B should fit the {budget} B budget");
    assert!(sh_peak < rep_peak, "sharded {sh_peak} B must undercut replicated {rep_peak} B");

    // UHF parity through the same sharded windows (three density stripes,
    // two Fock channels). The UHF driver iterates plain Roothaan with no
    // DIIS, and the graphene flakes' fixed-point maps do not settle
    // within the iteration cap — so the parity leg runs on water in
    // 6-31G(d,p), which converges in ~35 iterations and exercises the
    // identical sharded window path. Equal spin counts on a closed-shell
    // molecule give a well-conditioned unrestricted reference.
    let uhf_label = "water, 6-31G(d,p)";
    let uhf_mol = phi_chem::geom::small::water();
    let uhf_basis = BasisSet::build(&uhf_mol, BasisName::B631gdp);
    let (na, nb) = (uhf_mol.n_electrons() / 2, uhf_mol.n_electrons() / 2);
    let uhf_serial = run_uhf(&uhf_mol, &uhf_basis, na, nb, &UhfConfig::default());
    assert!(uhf_serial.converged, "serial UHF reference did not converge");
    let uhf_sharded = run_uhf(
        &uhf_mol,
        &uhf_basis,
        na,
        nb,
        &UhfConfig {
            algorithm: FockAlgorithm::Sharded { n_ranks: RANKS, mode: DdiMode::Mpi3OneSided },
            ..Default::default()
        },
    );
    assert!(uhf_sharded.converged, "sharded UHF did not converge");
    let de_uhf = (uhf_sharded.energy - uhf_serial.energy).abs();
    assert!(de_uhf <= 1e-10, "sharded UHF off serial by {de_uhf:.3e}");

    let t_rep = replicated.time_to_form_fock();
    let t_sh = sharded.time_to_form_fock();
    let time_ratio = t_sh / t_rep.max(1e-12);
    println!(
        "# Fock build time: replicated {t_rep:.3} s, sharded {t_sh:.3} s \
         ({time_ratio:.2}x the replicated time; window traffic, not speed, \
         is what sharding trades for O(N) per-rank memory)"
    );
    println!(
        "# energy: serial {:.10}, replicated {:.10}, sharded {:.10}",
        serial.energy, replicated.energy, sharded.energy
    );

    if let Some(path) = json_path() {
        let json = format!(
            "{{\n  \"bench\": \"memory_wall\",\n  \"system\": \"{label}\",\n  \
             \"n_basis\": {n},\n  \"ranks\": {RANKS},\n  \
             \"pair_bytes\": {pair_bytes},\n  \
             \"model_replicated_bytes\": {est_replicated:.0},\n  \
             \"model_sharded_bytes\": {est_sharded:.0},\n  \
             \"budget_bytes\": {budget},\n  \
             \"tracker_replicated_rank_peak_bytes\": {rep_peak},\n  \
             \"tracker_sharded_rank_peak_bytes\": {sh_peak},\n  \
             \"replicated_over_budget\": {},\n  \"sharded_fits_budget\": {},\n  \
             \"energy_serial\": {:.10},\n  \"energy_replicated\": {:.10},\n  \
             \"energy_sharded\": {:.10},\n  \
             \"energy_abs_diff_sharded\": {de_sh:.3e},\n  \
             \"uhf_system\": \"{uhf_label}\",\n  \
             \"energy_uhf_serial\": {:.10},\n  \"energy_uhf_sharded\": {:.10},\n  \
             \"energy_abs_diff_uhf_sharded\": {de_uhf:.3e},\n  \
             \"fock_seconds_replicated\": {t_rep:.6},\n  \
             \"fock_seconds_sharded\": {t_sh:.6},\n  \
             \"build_time_ratio_sharded_over_replicated\": {time_ratio:.3}\n}}\n",
            rep_peak > budget,
            sh_peak < budget,
            serial.energy,
            replicated.energy,
            sharded.energy,
            uhf_serial.energy,
            uhf_sharded.energy,
        );
        std::fs::write(&path, json).expect("write json");
        println!("# wrote {}", path.display());
    }
}
